package rads

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rads/internal/cluster"
	eng "rads/internal/engine"
	"rads/internal/obs"
	"rads/internal/partition"
	"rads/internal/pattern"
	"rads/internal/plan"
)

// ClusterEngine is the coordinator side of a multi-process RADS
// deployment: it implements engine.Engine by computing the execution
// plan once, fanning a RunQueryRequest out to every remote machine
// daemon over the transport (normally a cluster.TCPClient built from
// the address book), and aggregating the per-machine responses into
// one result. The machines talk to each other directly — verifyE,
// fetchV, checkR and shareR never pass through the coordinator; only
// the control plane does.
//
// Per-query daemon state is still single-slot, so the coordinator
// serializes cluster queries: concurrent Run calls queue on an
// internal mutex (the resident service's admission queue sits in
// front of this anyway). The wire does carry the service's QueryID
// now, so workers attribute traces and journal events per query.
//
// Capabilities are narrower than the in-process engine's: embeddings
// are counted on the workers and never cross the wire, so streaming
// is not offered, and a dispatched superstep cannot be recalled, so
// cancellation is only honoured between queries.
type ClusterEngine struct {
	tr cluster.Transport
	m  int

	// health, when StartHealth has run, carries the per-worker breaker
	// tracker and heartbeat loop (see health.go). Nil means no health
	// gating — the pre-subsystem behavior.
	health *clusterHealth

	mu sync.Mutex
}

// NewClusterEngine fronts m remote machines reachable through tr.
func NewClusterEngine(tr cluster.Transport, m int) *ClusterEngine {
	return &ClusterEngine{tr: tr, m: m}
}

// Name reports "RADS": this is the RADS engine, hosted remotely. A
// cluster-mode service registers it over the in-process one.
func (c *ClusterEngine) Name() string { return "RADS" }

// Capabilities declares what the remote deployment supports.
func (c *ClusterEngine) Capabilities() eng.Capabilities {
	return eng.Capabilities{
		Streaming:     false,
		Cancellation:  false,
		ArtifactScope: eng.ArtifactPerPattern,
	}
}

// Prepare computes the execution plan, exactly like the in-process
// engine — the artifact is shipped to the workers with each query.
func (c *ClusterEngine) Prepare(_ *partition.Partition, p *pattern.Pattern) (eng.Artifact, error) {
	pl, err := plan.Compute(p)
	if err != nil {
		return nil, fmt.Errorf("rads: planning %s: %w", p.Name, err)
	}
	return PlanArtifact{Plan: pl}, nil
}

// WaitReady pings every machine until it responds or the shared
// deadline passes (one budget for the whole cluster, not per machine)
// — called once at ingress startup so a booting cluster fails loudly
// instead of on the first query. When part is non-nil, every worker's
// partition fingerprint must match it: a worker booted from a
// different snapshot than the coordinator would otherwise serve
// silently inconsistent counts.
func (c *ClusterEngine) WaitReady(part *partition.Partition, deadline time.Duration) error {
	until := time.Now().Add(deadline)
	var wantHash uint64
	if part != nil {
		wantHash = PartitionFingerprint(part)
	}
	for t := 0; t < c.m; t++ {
		pr, err := Ping(c.tr, t, until)
		if err != nil {
			return err
		}
		if part == nil {
			continue
		}
		if pr.Vertices != part.G.NumVertices() || pr.PartitionHash != wantHash {
			return fmt.Errorf("rads: machine %d hosts a different partition (%d vertices, hash %x) than the coordinator (%d vertices, hash %x) — workers and ingress must load the same snapshot",
				t, pr.Vertices, pr.PartitionHash, part.G.NumVertices(), wantHash)
		}
	}
	return nil
}

// Run executes one query across the remote machines.
func (c *ClusterEngine) Run(ctx context.Context, req eng.Request) (eng.Result, error) {
	if err := eng.ValidateRequest(c, req); err != nil {
		return eng.Result{}, err
	}
	// Always trace: the coordinator's phases plus the folded per-worker
	// phase aggregates make a cluster query profile like an in-process
	// one.
	trace := req.Trace
	if trace == nil {
		trace = obs.NewTrace()
	}
	var pl *plan.Plan
	if req.Artifact != nil {
		pa, ok := req.Artifact.(PlanArtifact)
		if !ok {
			return eng.Result{}, fmt.Errorf("%w: engine RADS cannot use artifact %T", eng.ErrUnsupported, req.Artifact)
		}
		pl = pa.Plan
	} else {
		planSp := trace.Start("plan", -1, -1)
		var err error
		pl, err = plan.Compute(req.Pattern)
		planSp.End()
		if err != nil {
			return eng.Result{}, fmt.Errorf("rads: planning %s: %w", req.Pattern.Name, err)
		}
	}
	wire := &RunQueryRequest{
		Pattern:      pattern.Format(req.Pattern),
		Plan:         pl,
		QueryID:      req.QueryID,
		Workers:      req.Workers,
		BudgetBytes:  req.Budget.Limit(),
		HugeFrontier: req.HugeFrontier,
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return eng.Result{}, err
	}
	// Fail fast on known-down workers: every machine participates in
	// every query, so one open breaker means the query cannot succeed.
	if err := c.gateHealth(); err != nil {
		return eng.Result{}, err
	}

	start := time.Now()
	execSp := trace.Start("execute", -1, -1)
	// Anchor for stitching remote spans: each worker's trace clock
	// starts when its runQuery begins, which is (to within dispatch
	// latency) this moment on the coordinator's clock. Both sides
	// measure offsets from their own local zero, so absolute clock skew
	// between hosts cancels.
	execBase := trace.SinceStart()
	resps := make([]*RunQueryResponse, c.m)
	errs := make([]error, c.m)
	var wg sync.WaitGroup
	for t := 0; t < c.m; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			resp, err := c.tr.Call(cluster.Coordinator, t, wire)
			c.reportOutcome(t, err)
			if err != nil {
				// Transport-level failure (timeout, refused, severed):
				// the worker itself is unreachable, not just the query
				// unlucky — surface it as the typed down error.
				if !errors.Is(err, cluster.ErrRemote) {
					errs[t] = &WorkerDownError{Machine: t, Cause: err}
					return
				}
				errs[t] = fmt.Errorf("rads: machine %d: %w", t, err)
				return
			}
			r, ok := resp.(*RunQueryResponse)
			if !ok {
				errs[t] = fmt.Errorf("rads: machine %d replied %T", t, resp)
				return
			}
			// Account the control-plane exchange itself, so /stats shows
			// runQuery traffic alongside the folded worker data plane.
			req.Metrics.Account(cluster.Coordinator, t, wire, r, wire.MessageKind())
			resps[t] = r
		}(t)
	}
	wg.Wait()
	execSp.End()
	secs := time.Since(start).Seconds()
	// When a worker dies mid-query, its surviving peers often fail too
	// (their fetchV/verifyE calls to the dead machine error out, which
	// they report as remote errors). Prefer the root cause: a
	// WorkerDownError from any machine over a secondary remote error.
	for _, err := range errs {
		if err != nil && errors.Is(err, ErrWorkerDown) {
			return eng.Result{}, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return eng.Result{}, err
		}
	}

	foldSp := trace.Start("fold", -1, -1)
	var res eng.Result
	res.Seconds = secs
	var steals int
	machines := make([]obs.MachineStat, 0, c.m)
	for t, r := range resps {
		res.Total += r.SME + r.Distributed
		res.TreeNodes += r.SMENodes + r.DistNodes
		res.FrontierSplits += r.FrontierSplits
		if r.OOM {
			res.OOM = true
		}
		// Fold the per-worker budget high-water marks into the result:
		// the workers' MemBudgets live in their own processes, so this
		// is the coordinator's only view of them (ROADMAP gap from the
		// multi-process PR: the EngineResult path used to drop it).
		if r.PeakMemBytes > res.PeakMemBytes {
			res.PeakMemBytes = r.PeakMemBytes
		}
		req.Metrics.AccountRemote(t, r.CommBytes, r.CommMessages)
		// Stitch the worker's raw spans into the coordinator timeline,
		// re-anchored at the execute dispatch offset and re-attributed
		// to machine t; fall back to the compact PhaseNs aggregate for
		// workers that shipped no spans (older builds). Either way only
		// "/"-qualified sub-phases cross over: worker time runs inside
		// the coordinator's "execute" span, and the workers' own
		// top-level phases would break the tiling ("execute/machine"
		// already carries each machine's whole run). Never both — span
		// stitching feeds the same phase aggregation AddPhase would.
		if len(r.Spans) > 0 {
			sub := r.Spans[:0:0]
			for _, s := range r.Spans {
				if isSubPhase(s.Name) {
					sub = append(sub, s)
				}
			}
			trace.AddRemoteSpans(t, execBase, sub)
		} else {
			for name, ns := range r.PhaseNs {
				if isSubPhase(name) {
					trace.AddPhase(name, t, time.Duration(ns))
				}
			}
		}
		steals += r.GroupsStolen
		machines = append(machines, obs.MachineStat{
			Machine:   t,
			Seconds:   time.Duration(r.ElapsedNs).Seconds(),
			TreeNodes: r.SMENodes + r.DistNodes,
			Groups:    r.GroupsFormed,
			Stolen:    r.GroupsStolen,
		})
	}
	foldSp.End()
	if res.OOM {
		// Like the in-process engine, an out-of-budget run reports OOM
		// and no count — partial per-machine totals would be misleading.
		res.Total = 0
		res.TreeNodes = 0
	}
	prof := trace.Snapshot(time.Since(start))
	// Stitched spans arrive per machine in fold order; re-sort into one
	// cross-machine timeline.
	obs.SortSpans(prof.Spans)
	prof.Steals = steals
	prof.Machines = machines
	res.Profile = prof
	return res, nil
}

// isSubPhase reports whether a phase name is already "/"-qualified.
func isSubPhase(name string) bool {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return true
		}
	}
	return false
}
