package rads

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rads/internal/cluster"
	"rads/internal/etrie"
	"rads/internal/graph"
	"rads/internal/pattern"
)

const trieNodeBytes = etrie.NodeBytes

// groupState carries the per-region-group R-Meef state (Algorithm 4).
// It also shards every counter the group mutates — concurrent groups
// on one machine's worker pool never touch shared machine state until
// the merge at the end of processGroup.
type groupState struct {
	trie *etrie.Trie
	evi  *etrie.EVI

	view *view // the machine's shared local-knowledge view

	// pinLog records, in order, every view pin this group's in-flight
	// rounds acquired; each runRounds frame unpins its suffix on exit.
	// Pins keep entries resident in the shared cache (dropAll skips
	// them), so everything a round depends on stays determinable — and
	// budget-charged — until its frame completes.
	pinLog []graph.VertexID

	// created collects the EC leaves of the current flush segment: the
	// results produced since the last verify & filter.
	created []*etrie.Node

	f    []graph.VertexID // partial embedding indexed by query vertex
	used map[graph.VertexID]bool

	// pending undetermined edges along the current adjEnum chain,
	// stacked per recursion depth.
	pending [][]graph.Edge

	pathBuf []graph.VertexID

	// flushNodes bounds the number of EC leaves a flush segment may
	// accumulate before verification and deeper rounds run for it.
	// This is the reproduction's extension of the Section 6 memory
	// control below single-candidate granularity: a hub candidate whose
	// one-round expansion would not fit in the group memory target is
	// processed in several verify-filter-descend segments instead of
	// materializing the whole round. 0 disables segmentation (the
	// paper's plain per-round batching).
	flushNodes int

	// sub marks a per-worker shard state of a split round
	// (expandRoundParallel); shards never split again, so one group
	// claims the pool at most once at a time.
	sub bool

	// splits counts rounds this group expanded across the worker pool.
	splits int64

	// Per-group result shards, merged into the machine when the group
	// completes.
	distCount      int64
	nodes          int64 // trie nodes linked (tree-node accounting)
	elCum, etCum   int64
	elPeak, etPeak int64

	chargedTrie int64 // budget bytes currently charged for the trie
}

// processGroup runs all R-Meef rounds for one region group. worker is
// the pool-worker index it runs on, for span attribution.
func (m *machine) processGroup(group []graph.VertexID, worker int) error {
	e := m.e
	groupSp := e.cfg.Trace.Start("execute/group", m.id, worker)
	defer groupSp.End()
	st := &groupState{
		trie: etrie.New(len(e.redOrder)),
		evi:  etrie.NewEVI(),
		view: m.view,
		f:    make([]graph.VertexID, e.p.N()),
		used: make(map[graph.VertexID]bool, e.p.N()),
	}
	for i := range st.f {
		st.f[i] = -1
	}
	if target := e.groupMemTarget(); target > 0 {
		// Leave half the target as headroom for the segment being built.
		st.flushNodes = int(target / (2 * trieNodeBytes))
		if st.flushNodes < 1 {
			st.flushNodes = 1
		}
	}

	// Round 0: the frontier is the group's candidates of dp0.piv mapped
	// as single-vertex partial embeddings. For stolen groups the
	// candidates are foreign, so round 0 also prefetches them.
	roots := make([]*etrie.Node, 0, len(group))
	for _, v := range group {
		root := st.trie.Node(nil, v)
		st.trie.Link(root)
		st.nodes++
		roots = append(roots, root)
	}

	err := m.runRounds(st, 0, roots)

	// Release the trie's budget charge (also on the error path, so an
	// aborted group does not leak accounted bytes) and merge the
	// group's counter shards into the machine.
	e.cfg.Budget.Release(m.id, st.chargedTrie)
	st.chargedTrie = 0
	m.mu.Lock()
	m.distCount += st.distCount
	m.distNodes += st.nodes
	m.elCum += st.elCum
	m.etCum += st.etCum
	if st.elPeak > m.elPeak {
		m.elPeak = st.elPeak
	}
	if st.etPeak > m.etPeak {
		m.etPeak = st.etPeak
	}
	m.frontierSplits += st.splits
	m.mu.Unlock()
	return err
}

// adjKnown returns the adjacency list of x if determinable by this
// group: owned vertices or the machine's shared cache (entries the
// group's rounds depend on are pinned there, so they cannot be
// evicted from under an in-flight frame).
func (st *groupState) adjKnown(x graph.VertexID) ([]graph.VertexID, bool) {
	return st.view.adjKnown(x)
}

// mustAdj returns the adjacency list of x, which the caller has
// guaranteed is local or fetched-and-pinned; it panics otherwise,
// catching any violation of the distribution discipline.
func (st *groupState) mustAdj(x graph.VertexID) []graph.VertexID {
	a, ok := st.adjKnown(x)
	if !ok {
		panic(fmt.Sprintf("rads: machine %d read unfetched foreign vertex %d", st.view.id, x))
	}
	return a
}

// edgeKnown reports (exists, determinable) for data edge (a,b) using
// only local knowledge.
func (st *groupState) edgeKnown(a, b graph.VertexID) (bool, bool) {
	if adj, ok := st.adjKnown(a); ok {
		return graph.ContainsSorted(adj, b), true
	}
	if adj, ok := st.adjKnown(b); ok {
		return graph.ContainsSorted(adj, a), true
	}
	return false, false
}

// degreeAtLeast reports whether deg(x) >= d when determinable locally;
// undeterminable vertices pass (the filter is only a pruning aid).
func (st *groupState) degreeAtLeast(x graph.VertexID, d int) bool {
	if a, ok := st.adjKnown(x); ok {
		return len(a) >= d
	}
	return true
}

// logPin records one acquired view pin for frame-scoped release.
func (st *groupState) logPin(x graph.VertexID) {
	st.pinLog = append(st.pinLog, x)
}

// unpinTo releases every pin recorded after the marker (a former
// len(pinLog)), letting the next dropAll evict those entries.
func (st *groupState) unpinTo(marker int) {
	for _, x := range st.pinLog[marker:] {
		st.view.unpin(x)
	}
	st.pinLog = st.pinLog[:marker]
}

// runRounds executes rounds round..l for the given frontier (live
// results of P_{round-1}), in flush segments when memory pressure
// demands it.
func (m *machine) runRounds(st *groupState, round int, frontier []*etrie.Node) error {
	e := m.e
	// Frame-scoped pins: everything this round (and the emit frame)
	// pins is released when the frame completes, keeping the overlay's
	// resident set bounded by the in-flight recursion.
	marker := len(st.pinLog)
	defer st.unpinTo(marker)
	if round == len(e.pl.Units) {
		return m.emitResults(st, frontier)
	}
	if len(e.unitLeaves[round]) == 0 {
		// Every leaf of this unit is a deferred end vertex: the results
		// of P_round are exactly the results of P_{round-1}.
		return m.runRounds(st, round+1, frontier)
	}
	if err := m.fetchForeignPivots(st, round, frontier); err != nil {
		return err
	}
	// Huge-group frontier parallelism: a hub-seeded group can hold most
	// of a machine's work in one frontier, serialising the machine on
	// the single pool worker that owns the group. Past the threshold the
	// frontier is sharded across the pool; the shards resolve their
	// subtrees completely (expand, verify, descend), so on return the
	// round — and everything below it — is done.
	if thr := e.hugeFrontier(); thr > 0 && !st.sub && len(frontier) >= thr && e.workers() > 1 {
		return m.expandRoundParallel(st, round, frontier)
	}
	if err := m.expandRound(st, round, frontier); err != nil {
		return err
	}
	// End-of-round flush: verify and filter whatever the expansion
	// produced since the last mid-round flush, then descend.
	return m.flushSegment(st, round)
}

// expandRoundParallel expands one huge frontier across the machine's
// worker pool. Each worker owns a shard groupState — its own trie
// accounting, EVI, embedding frame, scratch and counter shards — and
// claims disjoint frontier chunks from an atomic cursor, so workers
// share only the view (mutex-guarded), the budget (mutex-guarded) and
// the transport. Chunks run the unchanged sequential machinery
// (expandRound + flushSegment), which resolves each chunk's entire
// subtree down to emitted results before the next chunk is claimed.
//
// Trie safety: nodes are free-standing (the Trie is accounting), so a
// worker linking children under a frontier node F touches only F's
// child counter — and disjoint chunks make F worker-exclusive. Shared
// ancestors of the frontier are protected by guard pins: the
// coordinator pins every frontier node before the fan-out, so a
// worker-side removal cascade stops at F (its counter never reaches
// zero) and cannot cross into nodes another worker can see. After the
// barrier the coordinator drops the guards single-threaded, which
// removes frontier nodes whose whole subtree resolved — the same
// semantics expandRound's per-parent Unpin gives the sequential path.
func (m *machine) expandRoundParallel(st *groupState, round int, frontier []*etrie.Node) error {
	e := m.e
	sp := e.cfg.Trace.Start("execute/splitRound", m.id, -1)
	defer sp.End()
	st.splits++

	guards := make([]*etrie.Node, 0, len(frontier))
	for _, n := range frontier {
		if n.Dead() {
			continue
		}
		st.trie.Pin(n)
		guards = append(guards, n)
	}

	workers := e.workers()
	// Small chunks load-balance the skew this path exists for (one hub
	// parent can dwarf a thousand ordinary ones), but each chunk pays a
	// flush; 8 claims per worker keeps both costs marginal.
	chunk := len(guards) / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}

	subs := make([]*groupState, workers)
	errs := make([]error, workers)
	var cursor atomic.Int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sub := &groupState{
			trie:       etrie.New(len(e.redOrder)),
			evi:        etrie.NewEVI(),
			view:       st.view,
			f:          make([]graph.VertexID, e.p.N()),
			used:       make(map[graph.VertexID]bool, e.p.N()),
			flushNodes: st.flushNodes,
			sub:        true,
		}
		for i := range sub.f {
			sub.f[i] = -1
		}
		subs[w] = sub
		wg.Add(1)
		go func(w int, sub *groupState) {
			defer wg.Done()
			for !aborted.Load() {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= len(guards) {
					return
				}
				hi := lo + chunk
				if hi > len(guards) {
					hi = len(guards)
				}
				if err := e.checkCtx(); err != nil {
					errs[w] = err
					aborted.Store(true)
					return
				}
				if err := m.expandRound(sub, round, guards[lo:hi]); err != nil {
					errs[w] = err
					aborted.Store(true)
					return
				}
				if err := m.flushSegment(sub, round); err != nil {
					errs[w] = err
					aborted.Store(true)
					return
				}
			}
		}(w, sub)
	}
	wg.Wait()

	var firstErr error
	for w, sub := range subs {
		// Release shard charges and any pins an error path left behind,
		// then merge the shard counters into the group (also on failure,
		// so partial work stays accounted).
		e.cfg.Budget.Release(m.id, sub.chargedTrie)
		sub.chargedTrie = 0
		sub.unpinTo(0)
		st.distCount += sub.distCount
		st.nodes += sub.nodes
		st.elCum += sub.elCum
		st.etCum += sub.etCum
		if sub.elPeak > st.elPeak {
			st.elPeak = sub.elPeak
		}
		if sub.etPeak > st.etPeak {
			st.etPeak = sub.etPeak
		}
		if errs[w] != nil && firstErr == nil {
			firstErr = errs[w]
		}
	}
	for _, n := range guards {
		st.trie.Unpin(n)
	}
	if firstErr != nil {
		return firstErr
	}
	return m.chargeTrie(st)
}

// flushSegment closes the current segment of round `round`: it
// verifies the EVI, filters failed ECs, records stats, reconciles the
// memory charge, and pushes the surviving ECs through the remaining
// rounds. On return the segment's subtree has been fully resolved and
// its memory released (final results are counted and removed as they
// complete).
func (m *machine) flushSegment(st *groupState, round int) error {
	e := m.e
	if err := m.verifyAndFilter(st); err != nil {
		return err
	}
	next := make([]*etrie.Node, 0, len(st.created))
	for _, n := range st.created {
		if !n.Dead() {
			next = append(next, n)
		}
	}
	st.created = st.created[:0]

	m.recordRoundStats(st, round, len(next))
	if err := m.chargeTrie(st); err != nil {
		return err
	}
	if e.cfg.DisableCache {
		st.view.dropAll()
	} else if b := e.cfg.Budget; b != nil && b.Limit() > 0 && b.Used(m.id) > b.Limit()*3/4 {
		// The paper's cache-release valve: "when more data vertices
		// need to be fetched, we may release some previously cached
		// data vertices if necessary". Dropping the cache between
		// rounds only costs re-fetches, never correctness.
		st.view.dropAll()
	}
	if len(next) == 0 {
		return nil
	}
	return m.runRounds(st, round+1, next)
}

// midFlush is flushSegment invoked from inside an expansion loop. The
// deeper rounds reuse the shared scratch state (f, used, pathBuf), so
// the caller's view of it is saved and restored around the descent.
func (m *machine) midFlush(st *groupState, round int) error {
	savedF, savedUsed, savedPath := st.f, st.used, st.pathBuf
	st.f = make([]graph.VertexID, len(savedF))
	for i := range st.f {
		st.f[i] = -1
	}
	st.used = make(map[graph.VertexID]bool, len(savedUsed))
	st.pathBuf = nil

	err := m.flushSegment(st, round)

	st.f, st.used, st.pathBuf = savedF, savedUsed, savedPath
	return err
}

// emitResults consumes the full embeddings of the (reduced) pattern:
// counts them — multiplying in the deferred end-vertex completions —
// hands full embeddings to the OnEmbedding callback when set, and
// removes them from the trie so their memory is reclaimed before the
// next segment builds up.
func (m *machine) emitResults(st *groupState, frontier []*etrie.Node) error {
	e := m.e
	if len(e.deferred) > 0 {
		if err := m.fetchDeferredPivots(st, frontier); err != nil {
			return err
		}
	}
	for _, leaf := range frontier {
		if leaf.Dead() {
			continue
		}
		if len(e.deferred) == 0 {
			st.distCount++
			if e.cfg.OnEmbedding != nil {
				st.pathBuf = st.trie.AppendPath(st.pathBuf[:0], leaf)
				for j, v := range st.pathBuf {
					st.f[e.redOrder[j]] = v
				}
				m.emit(st.f)
				for j := range st.pathBuf {
					st.f[e.redOrder[j]] = -1
				}
			}
			st.trie.Remove(leaf)
			continue
		}
		// End-vertex counting: materialize the core embedding, then
		// enumerate the deferred completions without caching anything
		// (the paper’s Exp-3 end-vertex treatment).
		st.pathBuf = st.trie.AppendPath(st.pathBuf[:0], leaf)
		for j, v := range st.pathBuf {
			st.f[e.redOrder[j]] = v
			st.used[v] = true
		}
		st.distCount += m.countDeferred(st, 0)
		for j := 0; j < len(st.pathBuf); j++ {
			u := e.redOrder[j]
			delete(st.used, st.f[u])
			st.f[u] = -1
		}
		st.trie.Remove(leaf)
	}
	// Reclaim the emitted results’ memory promptly.
	return m.chargeTrie(st)
}

// countDeferred counts the injective, symmetry-respecting assignments
// of the deferred end vertices given the fixed core embedding in st.f.
// Candidates for deferred vertex i are the neighbours of its pivot’s
// data vertex; the expansion edge holds by construction, and end
// vertices have no other pattern edges, so no verification is needed.
func (m *machine) countDeferred(st *groupState, di int) int64 {
	e := m.e
	if di == len(e.deferred) {
		return 1
	}
	d := e.deferred[di]
	adj := st.mustAdj(st.f[e.defPiv[di]])
	var total int64
	for _, v := range adj {
		if st.used[v] {
			continue
		}
		ok := true
		for _, c := range e.defCons[di] {
			o := st.f[c.other]
			if c.less {
				if !(v < o) {
					ok = false
					break
				}
			} else if !(v > o) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		st.f[d] = v
		st.used[v] = true
		total += m.countDeferred(st, di+1)
		delete(st.used, v)
		st.f[d] = -1
	}
	return total
}

// fetchDeferredPivots makes sure the adjacency list of every deferred
// end vertex’s pivot is locally available for counting, batching one
// fetchV per remote machine (the cache-release valve may have dropped
// lists fetched in earlier rounds).
func (m *machine) fetchDeferredPivots(st *groupState, frontier []*etrie.Node) error {
	e := m.e
	// One fetch phase at a time per machine: a concurrent group's
	// fetch completes (and inserts) before this need-computation runs,
	// so each foreign vertex crosses the network once per machine.
	st.view.fetchMu.Lock()
	defer st.view.fetchMu.Unlock()
	need := make(map[int][]graph.VertexID)
	seen := make(map[graph.VertexID]bool)
	for _, leaf := range frontier {
		if leaf.Dead() {
			continue
		}
		st.pathBuf = st.trie.AppendPath(st.pathBuf[:0], leaf)
		for _, piv := range e.defPiv {
			v := st.pathBuf[e.redPos[piv]]
			if seen[v] {
				continue
			}
			seen[v] = true
			if st.view.owned(v) {
				continue
			}
			// DisableCache models a cacheless machine: every round pays
			// the fetch again, so a cache hit is not taken.
			if !e.cfg.DisableCache && st.view.pinCached(v) {
				st.view.hits.Add(1)
				st.logPin(v) // keep it resident past any cache drop
				continue
			}
			st.view.misses.Add(1)
			need[int(e.part.Owner[v])] = append(need[int(e.part.Owner[v])], v)
		}
	}
	owners := make([]int, 0, len(need))
	for o := range need {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	if len(owners) > 0 {
		sp := e.cfg.Trace.Start("execute/fetchV", m.id, -1)
		defer sp.End()
	}
	for _, owner := range owners {
		vs := need[owner]
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		resp, err := e.tr.Call(m.id, owner, &cluster.FetchVRequest{Vertices: vs})
		if err != nil {
			return fmt.Errorf("fetchV (deferred pivots) to %d: %w", owner, err)
		}
		adj := resp.(*cluster.FetchVResponse).Adj
		if len(adj) != len(vs) {
			return fmt.Errorf("fetchV to %d: got %d lists for %d vertices", owner, len(adj), len(vs))
		}
		for i, v := range vs {
			if err := st.view.insertPinned(v, adj[i]); err != nil {
				return err
			}
			st.logPin(v)
		}
	}
	return nil
}

// fetchForeignPivots gathers the pivot data vertices of the round that
// are neither owned nor cached and fetches their adjacency lists, one
// batched fetchV request per remote machine (Section 3.2 "Expand").
func (m *machine) fetchForeignPivots(st *groupState, round int, frontier []*etrie.Node) error {
	e := m.e
	var pivPos int
	if round == 0 {
		pivPos = 0 // dp0.piv is at order position 0 = the trie root
	} else {
		pivPos = e.redPos[e.pl.Units[round].Piv]
	}
	// One fetch phase at a time per machine (see fetchDeferredPivots).
	st.view.fetchMu.Lock()
	defer st.view.fetchMu.Unlock()
	need := make(map[int][]graph.VertexID) // owner -> vertices
	seen := make(map[graph.VertexID]bool)
	for _, leaf := range frontier {
		if leaf.Dead() {
			continue
		}
		st.pathBuf = st.trie.AppendPath(st.pathBuf[:0], leaf)
		v := st.pathBuf[pivPos]
		if seen[v] {
			continue
		}
		seen[v] = true
		if st.view.owned(v) {
			continue
		}
		// DisableCache models a cacheless machine: every round pays the
		// fetch again, so a cache hit is not taken.
		if !e.cfg.DisableCache && st.view.pinCached(v) {
			st.view.hits.Add(1)
			st.logPin(v) // keep it resident past any cache drop
			continue
		}
		st.view.misses.Add(1)
		owner := int(e.part.Owner[v])
		need[owner] = append(need[owner], v)
	}
	owners := make([]int, 0, len(need))
	for o := range need {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	if len(owners) > 0 {
		sp := e.cfg.Trace.Start("execute/fetchV", m.id, -1)
		defer sp.End()
	}
	for _, owner := range owners {
		vs := need[owner]
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		resp, err := e.tr.Call(m.id, owner, &cluster.FetchVRequest{Vertices: vs})
		if err != nil {
			return fmt.Errorf("fetchV to %d: %w", owner, err)
		}
		adj := resp.(*cluster.FetchVResponse).Adj
		if len(adj) != len(vs) {
			return fmt.Errorf("fetchV to %d: got %d lists for %d vertices", owner, len(adj), len(vs))
		}
		for i, v := range vs {
			if err := st.view.insertPinned(v, adj[i]); err != nil {
				return err
			}
			st.logPin(v)
		}
	}
	return nil
}

// expandRound expands every frontier embedding of P_{round-1} through
// unit `round` (Algorithm 1). Frontier entries whose subtree produces
// no surviving results are removed via the pin/unpin accounting.
func (m *machine) expandRound(st *groupState, round int, frontier []*etrie.Node) error {
	e := m.e
	piv := e.pl.Units[round].Piv
	leaves := e.unitLeaves[round]
	prefixBefore := 1
	if round > 0 {
		prefixBefore = e.redPrefix[round-1]
	}
	for _, parent := range frontier {
		if parent.Dead() {
			continue
		}
		// Materialize f from the trie path.
		st.pathBuf = st.trie.AppendPath(st.pathBuf[:0], parent)
		if len(st.pathBuf) != prefixBefore {
			return fmt.Errorf("internal: frontier path length %d, want %d", len(st.pathBuf), prefixBefore)
		}
		for j, v := range st.pathBuf {
			st.f[e.redOrder[j]] = v
			st.used[v] = true
		}

		vpiv := st.f[piv]
		adj := st.mustAdj(vpiv) // fetched and pinned by fetchForeignPivots

		st.pending = st.pending[:0]
		// Pin the parent: a mid-round flush may consume and remove every
		// child produced so far while we are still expanding beneath it.
		st.trie.Pin(parent)
		_, err := m.adjEnum(st, round, 0, parent, leaves, adj)

		// Backtrack bookkeeping. pathBuf may have been clobbered by a
		// mid-round flush, so clear via f (which midFlush restores).
		for j := 0; j < prefixBefore; j++ {
			u := e.redOrder[j]
			delete(st.used, st.f[u])
			st.f[u] = -1
		}
		// Unpin removes the parent when nothing under it survived —
		// Algorithm 1 lines 7-9 generalized to segmented rounds.
		st.trie.Unpin(parent)
		if err != nil {
			return err
		}
	}
	return nil
}

// adjEnum is Algorithm 2: recursively match unit leaves within the
// neighbourhood of the pivot's data vertex, verifying what is locally
// determinable and deferring the rest to the EVI. At the top level it
// honours the flush limit: between candidate subtrees, if the current
// segment has grown past flushNodes, the segment is verified, filtered
// and descended before expansion continues.
func (m *machine) adjEnum(st *groupState, round, li int, parent *etrie.Node, leaves []pattern.VertexID, pivAdj []graph.VertexID) (bool, error) {
	e := m.e
	u := leaves[li]
	pos := e.redPos[u]
	produced := false

	for _, v := range pivAdj {
		if li == 0 && st.flushNodes > 0 && len(st.created) >= st.flushNodes {
			// Safe flush point: no partially-built chain is open (the
			// previous candidate's subtree is fully linked), and the
			// pinned parent survives the descent.
			if err := m.midFlush(st, round); err != nil {
				return produced, err
			}
		}
		if st.used[v] {
			continue
		}
		// Symmetry-breaking constraints against earlier positions.
		ok := true
		for _, c := range e.cons2[pos] {
			o := st.f[c.other]
			if c.less {
				if !(v < o) {
					ok = false
					break
				}
			} else if !(v > o) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if !st.degreeAtLeast(v, e.p.Degree(u)) {
			continue
		}
		// Verification edges to already-matched query vertices: check
		// locally when determinable, otherwise collect as undetermined.
		var undet []graph.Edge
		for _, w := range e.verif[pos] {
			fw := st.f[w]
			exists, determinable := st.edgeKnown(v, fw)
			if determinable {
				if !exists {
					ok = false
					break
				}
			} else {
				undet = append(undet, graph.Edge{U: v, V: fw}.Normalize())
			}
		}
		if !ok {
			continue
		}

		node := st.trie.Node(parent, v)
		st.f[u] = v
		st.used[v] = true
		st.pending = append(st.pending, undet)

		var err error
		if li == len(leaves)-1 {
			// EC of P_round complete (Algorithm 2 lines 16-19).
			st.trie.Link(node)
			st.nodes++
			st.created = append(st.created, node)
			for _, depthEdges := range st.pending {
				for _, de := range depthEdges {
					st.evi.Add(de, node)
				}
			}
			produced = true
		} else {
			var deeper bool
			deeper, err = m.adjEnum(st, round, li+1, node, leaves, pivAdj)
			if deeper {
				st.trie.Link(node)
				st.nodes++
				produced = true
			}
		}

		st.pending = st.pending[:len(st.pending)-1]
		delete(st.used, v)
		st.f[u] = -1
		if err != nil {
			return produced, err
		}
	}
	return produced, nil
}

// verifyAndFilter sends one verifyE request per remote machine covering
// all EVI keys, then filters failed candidates (Proposition 2).
func (m *machine) verifyAndFilter(st *groupState) error {
	e := m.e
	if st.evi.Len() == 0 {
		return nil
	}
	edges := st.evi.Edges()
	byOwner := make(map[int][]graph.Edge)
	for _, ed := range edges {
		owner := int(e.part.Owner[ed.U])
		if owner == m.id {
			// Shouldn't happen: locally determinable edges never enter
			// the EVI; resolve defensively without network traffic.
			if !e.g.HasEdge(ed.U, ed.V) {
				st.evi.Fail(ed, st.trie)
			}
			continue
		}
		byOwner[owner] = append(byOwner[owner], ed)
	}
	owners := make([]int, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	if len(owners) > 0 {
		sp := e.cfg.Trace.Start("execute/verifyE", m.id, -1)
		defer sp.End()
	}
	for _, owner := range owners {
		req := &cluster.VerifyERequest{Edges: byOwner[owner]}
		resp, err := e.tr.Call(m.id, owner, req)
		if err != nil {
			return fmt.Errorf("verifyE to %d: %w", owner, err)
		}
		exists := resp.(*cluster.VerifyEResponse).Exists
		if len(exists) != len(req.Edges) {
			return fmt.Errorf("verifyE to %d: %d answers for %d edges", owner, len(exists), len(req.Edges))
		}
		for i, ok := range exists {
			if !ok {
				st.evi.Fail(req.Edges[i], st.trie)
			}
		}
	}
	st.evi.Reset()
	return nil
}

// recordRoundStats accumulates the Table 3/4 compression accounting for
// one flush segment of one round: alive is the number of surviving
// results of P_round in the segment.
func (m *machine) recordRoundStats(st *groupState, round, alive int) {
	prefix := int64(m.e.redPrefix[round])
	el := int64(alive) * prefix * etrie.VertexBytes
	et := st.trie.Bytes()
	st.elCum += el
	st.etCum += et
	if el > st.elPeak {
		st.elPeak = el
	}
	if et > st.etPeak {
		st.etPeak = et
	}
}

// chargeTrie reconciles the budget charge with the trie's current size.
func (m *machine) chargeTrie(st *groupState) error {
	cur := st.trie.Bytes()
	switch {
	case cur > st.chargedTrie:
		if err := m.e.cfg.Budget.Charge(m.id, cur-st.chargedTrie); err != nil {
			return err
		}
	case cur < st.chargedTrie:
		m.e.cfg.Budget.Release(m.id, st.chargedTrie-cur)
	}
	st.chargedTrie = cur
	return nil
}
