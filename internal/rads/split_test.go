package rads

import (
	"sync"
	"testing"

	"rads/internal/cluster"
	"rads/internal/gen"
	"rads/internal/graph"
	"rads/internal/partition"
	"rads/internal/pattern"
)

// TestFrontierSplitParity is the count-parity oracle test of the
// huge-group frontier split: with the threshold forced low enough that
// essentially every round splits, counts must match the sequential
// oracle at every worker width, and the split must demonstrably fire
// when it can (Workers > 1) and never when it cannot (Workers == 1).
func TestFrontierSplitParity(t *testing.T) {
	g := gen.PowerLaw(220, 6, 2.4, 120, 11)
	part := partition.KWay(g, 3, 5)
	for _, name := range []string{"q1", "q4", "cq1"} {
		p := pattern.ByName(name)
		want := oracleCount(g, p)
		if want == 0 {
			t.Fatalf("%s: oracle found nothing; test graph too sparse", name)
		}
		for _, w := range []int{1, 2, 8} {
			res, err := Run(part, p, Config{
				DisableSME:   true, // all candidates through R-Meef rounds
				Workers:      w,
				HugeFrontier: 2,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if res.Total != want {
				t.Errorf("%s workers=%d: Total = %d, want %d", name, w, res.Total, want)
			}
			if w > 1 && res.FrontierSplits == 0 {
				t.Errorf("%s workers=%d: no frontier split fired with threshold 2", name, w)
			}
			if w == 1 && res.FrontierSplits != 0 {
				t.Errorf("%s workers=1: %d frontier splits; one worker has nothing to split across",
					name, res.FrontierSplits)
			}
		}
	}
}

// TestFrontierSplitUnderMemoryPressure drives the split through the
// paths that share mutable machinery across shards: a tiny group memory
// target forces mid-round flushes inside every shard, and a budget
// keeps the cache valve and trie charges active concurrently.
func TestFrontierSplitUnderMemoryPressure(t *testing.T) {
	g := gen.PowerLaw(200, 6, 2.4, 100, 23)
	part := partition.KWay(g, 3, 9)
	p := pattern.ByName("q4")
	want := oracleCount(g, p)
	res, err := Run(part, p, Config{
		DisableSME:     true,
		Workers:        4,
		HugeFrontier:   2,
		GroupMemTarget: 4096, // a handful of trie nodes per segment
		Budget:         cluster.NewMemBudget(part.M, 64<<20),
	})
	if err != nil {
		t.Fatalf("split under pressure: %v", err)
	}
	if res.Total != want {
		t.Errorf("Total = %d, want %d", res.Total, want)
	}
	if res.FrontierSplits == 0 {
		t.Error("no frontier split fired")
	}
}

// TestFrontierSplitDisabled pins the negative-threshold escape hatch.
func TestFrontierSplitDisabled(t *testing.T) {
	g := gen.Community(4, 12, 0.35, 8)
	p := pattern.ByName("q1")
	want := oracleCount(g, p)
	res, err := Run(partition.KWay(g, 3, 5), p, Config{
		DisableSME:   true,
		Workers:      4,
		HugeFrontier: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != want {
		t.Errorf("Total = %d, want %d", res.Total, want)
	}
	if res.FrontierSplits != 0 {
		t.Errorf("HugeFrontier=-1 still split %d rounds", res.FrontierSplits)
	}
}

// TestFrontierSplitStreaming checks that split rounds deliver streamed
// embeddings exactly once. OnEmbedding disables end-vertex deferral, so
// this also covers split shards that emit full embeddings.
func TestFrontierSplitStreaming(t *testing.T) {
	g := gen.Community(5, 14, 0.3, 31)
	part := partition.KWay(g, 3, 5)
	p := pattern.ByName("q1")
	want := oracleCount(g, p)
	seen := make(map[[8]int32]int)
	var mu sync.Mutex
	res, err := Run(part, p, Config{
		DisableSME:   true,
		Workers:      8,
		HugeFrontier: 2,
		OnEmbedding: func(machine int, f []graph.VertexID) {
			var key [8]int32
			for i, v := range f {
				key[i] = int32(v)
			}
			mu.Lock()
			seen[key]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != want {
		t.Errorf("Total = %d, want %d", res.Total, want)
	}
	if int64(len(seen)) != want {
		t.Errorf("streamed %d distinct embeddings, want %d", len(seen), want)
	}
	for key, n := range seen {
		if n != 1 {
			t.Errorf("embedding %v delivered %d times", key, n)
		}
	}
}
