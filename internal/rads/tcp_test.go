package rads

import (
	"testing"

	"rads/internal/cluster"
	"rads/internal/gen"
	"rads/internal/localenum"
	"rads/internal/partition"
	"rads/internal/pattern"
)

// TestRunOverTCP runs the full RADS engine with every daemon request
// crossing a real TCP connection (length-prefixed gob framing), not
// the in-process shortcut. This proves the protocol is genuinely
// serializable and the engine is transport-agnostic.
func TestRunOverTCP(t *testing.T) {
	g := gen.Community(3, 12, 0.35, 61)
	part := partition.KWay(g, 3, 7)
	metrics := cluster.NewMetrics(part.M)
	tr, err := cluster.NewTCPTransport(part.M, metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	for _, q := range []*pattern.Pattern{pattern.Triangle(), pattern.ByName("q4")} {
		want := localenum.Count(g, q, localenum.Options{})
		res, err := Run(part, q, Config{Transport: tr, Metrics: metrics})
		if err != nil {
			t.Fatalf("%s over TCP: %v", q.Name, err)
		}
		if res.Total != want {
			t.Errorf("%s over TCP: %d, oracle %d", q.Name, res.Total, want)
		}
	}
}

// TestRunOverTCPWithPressure exercises the TCP path together with the
// segmented memory control and work stealing.
func TestRunOverTCPWithPressure(t *testing.T) {
	g := gen.PowerLaw(400, 8, 2.7, 100, 67)
	part := partition.KWay(g, 4, 7)
	tr, err := cluster.NewTCPTransport(part.M, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	q := pattern.ByName("q2")
	want := localenum.Count(g, q, localenum.Options{})
	budget := cluster.NewMemBudget(part.M, 8<<20)
	res, err := Run(part, q, Config{
		Transport:      tr,
		Budget:         budget,
		GroupMemTarget: 32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != want {
		t.Errorf("total %d, oracle %d", res.Total, want)
	}
}
