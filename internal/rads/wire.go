package rads

import (
	"encoding/gob"

	"rads/internal/obs"
	"rads/internal/plan"
)

func init() {
	// Control-plane messages crossing the TCP transport between the
	// coordinator ingress and remote machine daemons.
	gob.Register(&RunQueryRequest{})
	gob.Register(&RunQueryResponse{})
	gob.Register(&StatsPullRequest{})
	gob.Register(&StatsPullResponse{})
}

// RunQueryRequest is the coordinator -> machine control message: run
// one RADS query on your shard. The pattern travels in its textual
// form; the plan is computed once at the coordinator and shipped so
// every machine executes the identical matching order regardless of
// which process it lives in. A nil plan makes the machine plan for
// itself (plan computation is deterministic, but shipping it keeps
// the coordinator's prepared artifacts authoritative).
type RunQueryRequest struct {
	Pattern string
	Plan    *plan.Plan

	// QueryID is the coordinator-side query identifier (minted by the
	// service), crossing the wire so remote machines attribute their
	// traces and journal events to the query. 0 = unattributed; as a
	// new gob field it decodes as 0 against older coordinators.
	QueryID uint64

	// Config knobs that survive the wire. Workers 0 lets the hosting
	// daemon pick its own default (its share of the process's CPUs).
	// HugeFrontier follows Config.HugeFrontier semantics (0 default,
	// negative disables); as a new gob field it decodes as 0 — the
	// default — against older coordinators.
	Workers        int
	BudgetBytes    int64
	GroupMemTarget int64
	HugeFrontier   int

	DisableSME               bool
	DisableEndVertexCounting bool
	DisableCache             bool
	RandomGrouping           bool
	DisableLoadBalancing     bool
}

// ByteSize estimates the wire size: the pattern text, the plan's
// integer payload, and the fixed knobs.
func (r *RunQueryRequest) ByteSize() int {
	n := len(r.Pattern) + 8*5 + 5
	if r.Plan != nil {
		n += 8 * (len(r.Plan.Order) + len(r.Plan.Pos) + len(r.Plan.PrefixLen))
		for i := range r.Plan.Units {
			n += 8 * (1 + len(r.Plan.Units[i].LF))
			n += 16 * (len(r.Plan.Star[i]) + len(r.Plan.Sib[i]) + len(r.Plan.Cross[i]))
		}
	}
	return n
}

// MessageKind names the message for per-kind accounting.
func (r *RunQueryRequest) MessageKind() string { return "runQuery" }

// RunQueryResponse carries one machine's results back to the
// coordinator — the per-machine slice of everything rads.Result
// aggregates.
type RunQueryResponse struct {
	SME         int64
	Distributed int64
	SMENodes    int64
	DistNodes   int64

	ElapsedNs int64

	ELBytesCum, ETBytesCum   int64
	ELBytesPeak, ETBytesPeak int64

	GroupsFormed int
	GroupsStolen int
	Rounds       int
	Workers      int
	DeferredEnds int

	// FrontierSplits counts this machine's R-Meef rounds expanded
	// across its worker pool because the region-group frontier exceeded
	// the HugeFrontier threshold.
	FrontierSplits int64

	PeakMemBytes int64

	// OOM reports that this machine died of its memory budget — an
	// outcome, not an error, exactly as in the in-process engine.
	OOM bool

	// CommBytes/CommMessages are the communication this machine's own
	// calls caused, accounted at the caller as always; the coordinator
	// folds them into its per-query metrics.
	CommBytes    int64
	CommMessages int64

	// PhaseNs is the machine's per-phase time aggregate in nanoseconds
	// ("execute/sme", "execute/group", ...), folded into the
	// coordinator's query trace so a cluster query profiles like an
	// in-process one. Nil when the worker did not trace.
	PhaseNs map[string]int64

	// CacheHits/CacheMisses are the machine's adjacency-cache
	// effectiveness over the query's fetch phases.
	CacheHits   int64
	CacheMisses int64

	// Spans is the machine's raw span list (offsets relative to the
	// machine's own query start, so clock skew never crosses the wire);
	// the coordinator stitches them into its cross-cluster timeline.
	// PhaseNs stays alongside as the compact aggregate — and as the
	// fallback for older workers that ship no spans.
	Spans []obs.Span
}

// ByteSize counts the fixed-width fields plus the phase map and span
// payloads.
func (r *RunQueryResponse) ByteSize() int {
	n := 20*8 + 1
	for k := range r.PhaseNs {
		n += len(k) + 8
	}
	for i := range r.Spans {
		n += len(r.Spans[i].Name) + 4*8
	}
	return n
}

// MessageKind names the message for per-kind accounting.
func (r *RunQueryResponse) MessageKind() string { return "runQuery" }

// StatsPullRequest asks a machine daemon for a snapshot of its
// observability registry — the fleet-aggregation RPC behind
// /metrics/cluster and /debug/cluster. It is a pure read (no query
// state touched), so the retry policy classifies it as retryable.
type StatsPullRequest struct{}

// ByteSize: an empty control message.
func (r *StatsPullRequest) ByteSize() int { return 1 }

// MessageKind names the message for per-kind accounting.
func (r *StatsPullRequest) MessageKind() string { return "statsPull" }

// StatsPullResponse is one machine's frozen registry. Machines hosted
// in one worker process share a registry, so co-hosted machines answer
// with identical families — the coordinator labels each snapshot with
// the machine id it asked, which is the honest per-machine attribution
// the address book supports.
type StatsPullResponse struct {
	Machine int
	// Fingerprint is the machine's partition fingerprint, so the fleet
	// view can prove every worker serves the same snapshot.
	Fingerprint uint64
	Families    []obs.FamilySnapshot
}

// ByteSize estimates the snapshot payload: family/series names plus
// fixed-width values and histogram layouts.
func (r *StatsPullResponse) ByteSize() int {
	n := 2 * 8
	for i := range r.Families {
		f := &r.Families[i]
		n += len(f.Name) + len(f.Help) + len(f.Type) + len(f.Label)
		for j := range f.Series {
			s := &f.Series[j]
			n += len(s.Label) + 4*8 + 8*(len(s.Bounds)+len(s.Counts))
		}
	}
	return n
}

// MessageKind names the message for per-kind accounting.
func (r *StatsPullResponse) MessageKind() string { return "statsPull" }
