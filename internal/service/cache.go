package service

import (
	"container/list"
	"sync"
)

// resultCache is a small LRU keyed by canonical pattern form. Counts
// are isomorphism-invariant, so one entry answers every relabeling of
// a motif — the "millions of users asking for triangles" hot path.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent; values are *cacheEntry
	idx map[string]*list.Element
}

type cacheEntry struct {
	key string
	res Result
}

// newResultCache returns a cache of at most capacity entries, or nil
// (caching disabled) when capacity < 0.
func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = 256
	}
	return &resultCache{cap: capacity, ll: list.New(), idx: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		return Result{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.idx[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.idx, last.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
