package service

import (
	"context"

	"rads/internal/cluster"
	"rads/internal/graph"
	"rads/internal/harness"
	"rads/internal/partition"
	"rads/internal/pattern"
	"rads/internal/plan"
)

// EngineRequest is everything the service hands an engine for one
// query: the resident partition plus per-query accounting objects.
type EngineRequest struct {
	Part    *partition.Partition
	Pattern *pattern.Pattern
	// Plan is the memoized RADS plan for Pattern (nil for engines that
	// plan on their own).
	Plan *plan.Plan
	// Budget is the per-query memory budget (nil = unlimited).
	Budget *cluster.MemBudget
	// Metrics is a fresh per-query metrics object; the service folds
	// it into its cumulative totals after the run.
	Metrics *cluster.Metrics
	// OnEmbedding, when non-nil, must receive every embedding found.
	// Engines that cannot stream must fail if it is set.
	OnEmbedding func(machine int, f []graph.VertexID)
}

// EngineResult is an engine's normalized answer.
type EngineResult struct {
	Total   int64
	Seconds float64
	OOM     bool // died of the memory budget; not an error
}

// EngineFunc runs one query. It must honour ctx where it can and be
// safe for concurrent invocations (the admission scheduler runs up to
// MaxConcurrent of them at once against the shared partition).
type EngineFunc func(ctx context.Context, req EngineRequest) (EngineResult, error)

// registerDefaultEngines wires RADS and every baseline the harness
// knows how to dispatch.
func registerDefaultEngines(s *Service) {
	for _, name := range harness.AllEngineNames {
		s.engines[name] = harnessEngine(name)
	}
}

// harnessEngine adapts harness.RunEngine into an EngineFunc.
func harnessEngine(name string) EngineFunc {
	return func(ctx context.Context, req EngineRequest) (EngineResult, error) {
		u := harness.RunEngine(harness.RunSpec{
			Engine:      name,
			Part:        req.Part,
			Query:       req.Pattern,
			Ctx:         ctx,
			Plan:        req.Plan,
			Metrics:     req.Metrics,
			Budget:      req.Budget,
			OnEmbedding: req.OnEmbedding,
		})
		if u.Err != nil {
			return EngineResult{}, u.Err
		}
		return EngineResult{Total: u.Total, Seconds: u.Seconds, OOM: u.OOM}, nil
	}
}
