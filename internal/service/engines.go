package service

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"rads/internal/cluster"
	"rads/internal/engine"
	_ "rads/internal/engine/all" // register RADS and the baselines
	"rads/internal/graph"
	"rads/internal/obs"
	"rads/internal/partition"
	"rads/internal/pattern"
)

// EngineRequest is everything the service hands an engine for one
// query: the resident partition plus per-query accounting objects.
type EngineRequest struct {
	Part    *partition.Partition
	Pattern *pattern.Pattern
	// Budget is the per-query memory budget (nil = unlimited).
	Budget *cluster.MemBudget
	// Metrics is a fresh per-query metrics object; the service folds
	// it into its cumulative totals after the run.
	Metrics *cluster.Metrics
	// OnEmbedding, when non-nil, must receive every embedding found.
	// Engines that cannot stream must fail if it is set.
	OnEmbedding func(machine int, f []graph.VertexID)
	// Trace, when non-nil, receives the query's phase spans; engines
	// that trace (RADS, the cluster coordinator) record into it and
	// snapshot it into their result's Profile.
	Trace *obs.Trace
	// QueryID is the service-minted query id; cluster-mode engines
	// thread it onto the wire so workers attribute traces and journal
	// events to the query.
	QueryID uint64
}

// EngineResult is an engine's normalized answer.
type EngineResult struct {
	Total   int64
	Seconds float64
	OOM     bool // died of the memory budget; not an error
	// TreeNodes counts the run's successful partial matches when the
	// engine reports them (0 otherwise); the service accumulates it
	// into the tree_nodes_total stat.
	TreeNodes int64
	// FrontierSplits counts the run's huge-group frontier splits when
	// the engine reports them (0 otherwise); accumulated into the
	// frontier_splits stat.
	FrontierSplits int64
	// PeakMemBytes is the engine-reported memory high-water mark (max
	// over machines). The cluster coordinator fills it from the remote
	// workers; for in-process engines the per-query MemBudget usually
	// carries the same number.
	PeakMemBytes int64
	// Profile is the engine's execution profile when it traces (nil
	// otherwise; the service synthesizes a minimal one).
	Profile *obs.Profile
}

// EngineFunc runs one query. It must honour ctx where it can and be
// safe for concurrent invocations (the admission scheduler runs up to
// MaxConcurrent of them at once against the shared partition). It is
// the extension point for callers that want an engine outside the
// process-wide registry (tests, experiments); the built-ins arrive
// through engine.Register instead.
type EngineFunc func(ctx context.Context, req EngineRequest) (EngineResult, error)

// engineEntry pairs the callable with its declared capabilities; caps
// is nil for external EngineFuncs, whose capabilities are unknown (the
// service then cannot pre-reject unsupported options — the engine must
// fail them itself).
type engineEntry struct {
	fn   EngineFunc
	caps *engine.Capabilities
}

// registerDefaultEngines wires every engine in the process-wide
// registry (RADS and the five baselines via rads/internal/engine/all).
func registerDefaultEngines(s *Service) {
	for _, name := range engine.Names() {
		e, _ := engine.Lookup(name)
		caps := e.Capabilities()
		s.engines[name] = engineEntry{fn: s.registryEngine(e), caps: &caps}
	}
}

// registryEngine adapts an engine.Engine into an EngineFunc, routing
// prepared artifacts (RADS plans, Crystal clique indexes) through the
// service's per-engine artifact cache.
func (s *Service) registryEngine(e engine.Engine) EngineFunc {
	return func(ctx context.Context, req EngineRequest) (EngineResult, error) {
		ereq := engine.Request{
			Part:        req.Part,
			Pattern:     req.Pattern,
			Metrics:     req.Metrics,
			Budget:      req.Budget,
			OnEmbedding: req.OnEmbedding,
			Trace:       req.Trace,
			QueryID:     req.QueryID,
		}
		if err := engine.ValidateRequest(e, ereq); err != nil {
			return EngineResult{}, err
		}
		// ctx-aware: a client that is already gone neither starts a
		// preparation nor waits on someone else's.
		art, err := s.artifacts.Get(ctx, e, req.Part, req.Pattern)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return EngineResult{}, err
			}
			return EngineResult{}, fmt.Errorf("preparing %s for %s: %w", e.Name(), req.Pattern.Name, err)
		}
		ereq.Artifact = art
		res, err := e.Run(ctx, ereq)
		if err != nil {
			return EngineResult{}, err
		}
		return EngineResult{Total: res.Total, Seconds: res.Seconds, OOM: res.OOM,
			TreeNodes: res.TreeNodes, FrontierSplits: res.FrontierSplits,
			PeakMemBytes: res.PeakMemBytes, Profile: res.Profile}, nil
	}
}

// EngineInfo describes one engine the service can route to — the
// /engines payload of radserve.
type EngineInfo struct {
	Name    string `json:"name"`
	Default bool   `json:"default,omitempty"`
	// Capability flags, from the engine's declared Capabilities.
	Streaming         bool   `json:"streaming"`
	Cancellation      bool   `json:"cancellation"`
	PreparedArtifacts bool   `json:"prepared_artifacts"`
	ArtifactScope     string `json:"artifact_scope,omitempty"`
	// External marks engines added via RegisterEngine, whose
	// capabilities the service cannot introspect.
	External bool `json:"external,omitempty"`
}

// Engines lists every engine this service routes to, sorted by name.
func (s *Service) Engines() []EngineInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]EngineInfo, 0, len(s.engines))
	for name, ent := range s.engines {
		info := EngineInfo{Name: name, Default: name == s.cfg.DefaultEngine}
		if ent.caps != nil {
			info.Streaming = ent.caps.Streaming
			info.Cancellation = ent.caps.Cancellation
			info.PreparedArtifacts = ent.caps.PreparedArtifacts()
			if info.PreparedArtifacts {
				info.ArtifactScope = ent.caps.ArtifactScope.String()
			}
		} else {
			info.External = true
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
