package service

import (
	"context"
	"time"

	"rads/internal/graph"
	"rads/internal/obs"
	"rads/internal/pattern"
)

// Query is one request against the resident graph.
type Query struct {
	// Pattern is the motif to enumerate. Required and must be
	// connected.
	Pattern *pattern.Pattern
	// Engine names the registered engine to run ("" = the service's
	// default, normally RADS).
	Engine string
	// Stream delivers every embedding through Handle.Embeddings
	// instead of just counting. Streaming queries bypass the result
	// cache and are only supported by engines that can emit embeddings
	// (RADS among the built-ins).
	Stream bool
	// NoCache bypasses the result cache in both directions.
	NoCache bool
}

// Result is the terminal outcome of a query.
type Result struct {
	// QueryID is the service-assigned id; /debug/trace?id= looks up
	// the retained profile by it.
	QueryID   uint64        `json:"query_id,omitempty"`
	Pattern   string        `json:"pattern"`
	Canonical string        `json:"canonical,omitempty"`
	Engine    string        `json:"engine"`
	Total     int64         `json:"total"`
	TreeNodes int64         `json:"tree_nodes,omitempty"`
	Seconds   float64       `json:"seconds"`
	CommMB    float64       `json:"comm_mb"`
	PeakMB    float64       `json:"peak_mb,omitempty"`
	OOM       bool          `json:"oom,omitempty"`
	CacheHit  bool          `json:"cache_hit"`
	Queued    time.Duration `json:"-"`
	// Profile is the run's execution profile (phase times, per-machine
	// breakdown; nil for cache hits and pre-observability engines).
	Profile *obs.Profile `json:"profile,omitempty"`
}

// Handle is the streamed result of a Submit: a query in flight. It
// completes exactly once; all methods are safe to call from any
// goroutine.
type Handle struct {
	query  Query
	engine string
	id     uint64

	emb  chan []graph.VertexID // non-nil iff query.Stream
	done chan struct{}
	res  Result
	err  error
}

func newHandle(q Query, engine string) *Handle {
	h := &Handle{query: q, engine: engine, done: make(chan struct{})}
	if q.Stream {
		h.emb = make(chan []graph.VertexID, 64)
	}
	return h
}

// Engine returns the resolved engine name serving this query (the
// service default if the query named none).
func (h *Handle) Engine() string { return h.engine }

// ID returns the service-assigned query id, usable against
// /debug/trace?id= while the profile is retained.
func (h *Handle) ID() uint64 { return h.id }

// Embeddings returns the stream of embeddings for a Stream query (each
// slice indexed by query vertex). The channel closes when the query
// finishes; it is nil for count-only queries. Consumers must drain it
// promptly — the engine blocks on a full buffer.
func (h *Handle) Embeddings() <-chan []graph.VertexID { return h.emb }

// Done closes when the query completes (successfully or not).
func (h *Handle) Done() <-chan struct{} { return h.done }

// Result blocks until the query completes or ctx is cancelled, then
// returns the outcome. For Stream queries, callers should drain
// Embeddings first (or concurrently).
func (h *Handle) Result(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-h.done:
		return h.res, h.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// TryResult returns the outcome without blocking; ok is false while
// the query is still in flight.
func (h *Handle) TryResult() (res Result, err error, ok bool) {
	select {
	case <-h.done:
		return h.res, h.err, true
	default:
		return Result{}, nil, false
	}
}

func (h *Handle) complete(res Result) {
	h.res = res
	if h.emb != nil {
		close(h.emb)
	}
	close(h.done)
}

func (h *Handle) fail(err error) {
	h.err = err
	if h.emb != nil {
		close(h.emb)
	}
	close(h.done)
}
