package service_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rads/internal/obs"
	"rads/internal/pattern"
	"rads/internal/service"
)

// TestQueryProfileAndRegistry: a served query carries a profile that
// accounts its wall time, is retrievable by id afterwards, and feeds
// the service's metrics families.
func TestQueryProfileAndRegistry(t *testing.T) {
	svc := openService(t, service.Config{Machines: 4, MaxConcurrent: 2})

	q := pattern.ByName("q1")
	h, err := svc.Submit(context.Background(), service.Query{Pattern: q})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryID == 0 || res.QueryID != h.ID() {
		t.Errorf("query id %d on result, %d on handle", res.QueryID, h.ID())
	}
	p := res.Profile
	if p == nil {
		t.Fatal("no profile on result")
	}
	if p.ID != res.QueryID || p.Engine != "RADS" || p.Query != q.Name {
		t.Errorf("profile identity wrong: %+v", p)
	}
	if frac := p.AccountedFraction(); frac < 0.9 {
		t.Errorf("profile accounts %.1f%% of wall, want >= 90%% (phases: %+v)", frac*100, p.Phases)
	}
	if got := svc.FindProfile(res.QueryID); got == nil || got.ID != res.QueryID {
		t.Errorf("FindProfile(%d) = %v", res.QueryID, got)
	}
	if recent := svc.RecentProfiles(10); len(recent) != 1 || recent[0].ID != res.QueryID {
		t.Errorf("recent ring: %+v", recent)
	}

	// Same motif again: answered from the cache, visible as such in the
	// registry and the profile ring.
	h2, err := svc.Submit(context.Background(), service.Query{Pattern: q})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := h2.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit {
		t.Fatal("second identical query missed the cache")
	}
	if res2.Profile != nil {
		t.Error("cache hits must not echo the original run's profile")
	}
	if hp := svc.FindProfile(h2.ID()); hp == nil || !hp.CacheHit {
		t.Errorf("cache hit profile not retained: %v", hp)
	}

	var b strings.Builder
	if err := svc.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	expo := b.String()
	for _, line := range []string{
		`rads_query_seconds_count{engine="RADS"} 1`,
		"rads_admission_wait_seconds_count 1",
		`rads_queries_total{outcome="cache_hit"} 1`,
		`rads_queries_total{outcome="ok"} 1`,
		"rads_cache_hits_total 1",
		"rads_cache_misses_total 1",
		"rads_queries_running 0",
		"rads_queries_queued 0",
		"rads_tree_nodes_total",
		"rads_kernel_selections_total",
	} {
		if !strings.Contains(expo, line) {
			t.Errorf("exposition missing %q:\n%s", line, expo)
		}
	}
	// The in-process machines exchanged daemon messages; both per-kind
	// transport families and the latency histograms must be populated.
	if !strings.Contains(expo, `rads_transport_bytes_total{kind=`) {
		t.Errorf("no per-kind transport bytes in exposition:\n%s", expo)
	}
	if !strings.Contains(expo, `rads_transport_messages_total{kind=`) {
		t.Errorf("no per-kind transport messages in exposition:\n%s", expo)
	}
	if !strings.Contains(expo, `rads_transport_latency_seconds_count{kind=`) {
		t.Errorf("no per-kind transport latency in exposition:\n%s", expo)
	}
}

// TestBaselineEngineGetsSyntheticProfile: engines that don't trace
// still produce a profile whose single execute phase covers the run.
func TestBaselineEngineGetsSyntheticProfile(t *testing.T) {
	svc := openService(t, service.Config{Machines: 3})
	h, err := svc.Submit(context.Background(), service.Query{
		Pattern: pattern.Triangle(), Engine: "PSgL", NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p == nil {
		t.Fatal("no profile on baseline result")
	}
	if p.Engine != "PSgL" {
		t.Errorf("profile engine %q", p.Engine)
	}
	if frac := p.AccountedFraction(); frac < 0.9 {
		t.Errorf("synthetic profile accounts %.1f%%, want >= 90%% (phases: %+v)", frac*100, p.Phases)
	}
}

// TestSlowQueryRing: with a zero-ish threshold every query is slow —
// retained in the slow ring and reported through the callback.
func TestSlowQueryRing(t *testing.T) {
	var calls atomic.Int64
	svc := openService(t, service.Config{
		Machines:  3,
		SlowQuery: time.Nanosecond,
		OnSlowQuery: func(p *obs.Profile) {
			if p.ID == 0 {
				t.Error("slow callback got profile without id")
			}
			calls.Add(1)
		},
	})
	h, err := svc.Submit(context.Background(), service.Query{Pattern: pattern.Triangle(), NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Result(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Errorf("slow callback ran %d times, want 1", calls.Load())
	}
	if slow := svc.SlowProfiles(10); len(slow) != 1 {
		t.Errorf("slow ring holds %d profiles, want 1", len(slow))
	}
}
