// Package service is the resident query layer: a long-lived,
// concurrency-safe front end over the enumeration engines.
//
// Every batch entry point in this repository (radsrun, radsbench, the
// examples) historically paid the full setup cost per query — load the
// data graph, partition it, compute border distances, plan the
// pattern, run, exit. RADS itself is deliberately stateful across
// rounds (cached adjacency, region groups), and a serving system
// should be stateful across *queries*: load and partition once, keep
// the per-machine state resident, and amortize it over millions of
// requests.
//
// A Service owns:
//
//   - the partitioned data graph, with per-machine border distances
//     precomputed (they drive the SM-E split of Proposition 1);
//   - an artifact cache: prepared per-engine state (RADS execution
//     plans, Crystal clique indexes) memoized per pattern through the
//     engine API's Prepare;
//   - a result cache keyed by the pattern's canonical form, so any
//     relabeling of an already-answered motif is O(1);
//   - an admission scheduler: at most MaxConcurrent queries run at
//     once, excess load queues (FIFO through a semaphore) up to
//     MaxQueued, and beyond that Submit fails fast with ErrOverloaded
//     instead of falling over;
//   - engine routing over the process-wide engine registry (RADS and
//     the baseline engines), extensible via RegisterEngine.
//
// Submit returns a Handle immediately; results stream through it.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rads/internal/cluster"
	"rads/internal/engine"
	"rads/internal/graph"
	"rads/internal/obs"
	"rads/internal/partition"
	"rads/internal/rads"
)

// Errors returned by Submit.
var (
	ErrClosed     = errors.New("service: closed")
	ErrOverloaded = errors.New("service: overloaded, queue full")
)

// DefaultPartitionSeed seeds the KWay partitioner when Config leaves
// PartitionSeed zero. Exported so out-of-process tooling (radserve's
// snapshot writer) partitions identically to service.Open — a snapshot
// and a cold start must agree on the vertex-to-machine assignment.
const DefaultPartitionSeed = 7

// MaxPatternVertices bounds accepted query patterns. The paper's
// largest query has 6 vertices and its running example 10; beyond
// that enumeration is intractable anyway, and 10 keeps pre-admission
// canonicalization (exponential worst case; measured <= ~5ms on
// dense random 10-vertex patterns) too cheap to weaponize over HTTP.
const MaxPatternVertices = 10

// Config tunes a Service. The zero value gets sensible defaults.
type Config struct {
	// Machines is the number of simulated machines the graph is
	// partitioned across (default 4). Ignored by OpenPartitioned.
	Machines int
	// PartitionSeed seeds the KWay partitioner (default 7). Ignored by
	// OpenPartitioned.
	PartitionSeed int64
	// MaxConcurrent caps queries running at once (default 4).
	MaxConcurrent int
	// MaxQueued caps queries waiting for admission; Submit returns
	// ErrOverloaded beyond it (default 64).
	MaxQueued int
	// QueryBudgetBytes is the per-machine memory budget granted to each
	// query (0 = unlimited). Queries that exceed it report OOM in
	// their Result rather than failing the service.
	QueryBudgetBytes int64
	// CacheEntries is the result-cache capacity (default 256;
	// negative disables caching).
	CacheEntries int
	// DefaultEngine answers queries that don't name one (default RADS).
	DefaultEngine string
	// SlowQuery is the latency above which a completed query's profile
	// is also kept in the slow-query ring and reported through
	// OnSlowQuery (0 disables slow-query tracking).
	SlowQuery time.Duration
	// ProfileCap sizes the recent-profile and slow-query rings
	// (default 128).
	ProfileCap int
	// OnSlowQuery, when set, is called synchronously with the profile
	// of every query slower than SlowQuery (radserve logs these).
	OnSlowQuery func(*obs.Profile)
	// Events, when set, receives the service's journal entries (slow
	// queries, frontier splits); nil records nothing (obs.EventLog is
	// nil-tolerant).
	Events *obs.EventLog
}

func (c Config) withDefaults() Config {
	if c.Machines <= 0 {
		c.Machines = 4
	}
	if c.PartitionSeed == 0 {
		c.PartitionSeed = DefaultPartitionSeed
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.DefaultEngine == "" {
		c.DefaultEngine = "RADS"
	}
	if c.ProfileCap <= 0 {
		c.ProfileCap = 128
	}
	return c
}

// Service is the resident query service. It is safe for concurrent
// Submit calls.
type Service struct {
	cfg   Config
	part  *partition.Partition
	start time.Time

	// Partition-quality numbers are immutable; computed once at Open
	// so /stats polling never rescans the graph's edges.
	edgeCut int64
	balance float64

	sem     chan struct{} // admission slots, cap = MaxConcurrent
	closing chan struct{}

	mu      sync.Mutex
	closed  bool
	engines map[string]engineEntry
	cache   *resultCache

	// artifacts memoizes prepared per-engine state for the resident
	// partition (RADS plans per labeled pattern, Crystal clique indexes
	// per canonical form).
	artifacts *engine.ArtifactCache

	wg sync.WaitGroup // all query goroutines

	// Cumulative communication across all served queries.
	commBytes      atomic.Int64
	commMessages   atomic.Int64
	kindMu         sync.Mutex
	commByKind     map[string]int64
	commMsgsByKind map[string]int64

	// Observability: a per-service registry (so several services in one
	// process never collide), pre-resolved hot-path families, and the
	// recent/slow profile rings behind /debug/trace.
	reg             *obs.Registry
	obsQueryLatency obs.HistogramVec // by engine
	obsWaitLatency  *obs.Histogram
	obsQueries      obs.CounterVec   // by outcome
	obsTransport    obs.HistogramVec // by message kind
	obsSteals       *obs.Counter
	profiles        *obs.ProfileRing
	slow            *obs.ProfileRing
	queryIDs        atomic.Uint64

	// Counters surfaced by Stats.
	submitted   atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	cancelled   atomic.Int64
	rejected    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	engineRuns  atomic.Int64
	running     atomic.Int64
	queued      atomic.Int64
	treeNodes   atomic.Int64
	// frontierSplits accumulates FrontierSplits across runs — how often
	// the huge-group frontier parallelism actually fired.
	frontierSplits atomic.Int64
}

// Open loads g into a new Service: partitions it across cfg.Machines
// with the KWay partitioner and warms the per-machine resident state.
func Open(g graph.Store, cfg Config) (*Service, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("service: empty data graph")
	}
	cfg = cfg.withDefaults()
	return OpenPartitioned(partition.KWay(g, cfg.Machines, cfg.PartitionSeed), cfg)
}

// OpenPartitioned builds a Service over an existing partition (callers
// that partitioned the graph themselves, e.g. with Hash for ablations).
func OpenPartitioned(part *partition.Partition, cfg Config) (*Service, error) {
	if part == nil || part.M <= 0 {
		return nil, errors.New("service: nil or empty partition")
	}
	cfg = cfg.withDefaults()
	cfg.Machines = part.M
	s := &Service{
		cfg:            cfg,
		part:           part,
		start:          time.Now(),
		edgeCut:        part.EdgeCut(),
		balance:        part.Balance(),
		sem:            make(chan struct{}, cfg.MaxConcurrent),
		closing:        make(chan struct{}),
		engines:        make(map[string]engineEntry),
		cache:          newResultCache(cfg.CacheEntries),
		artifacts:      engine.NewArtifactCache(0),
		commByKind:     make(map[string]int64),
		commMsgsByKind: make(map[string]int64),
		profiles:       obs.NewProfileRing(cfg.ProfileCap),
		slow:           obs.NewProfileRing(cfg.ProfileCap),
	}
	s.initObs()
	registerDefaultEngines(s)
	// Warm the resident state: border distances are query-independent,
	// so pay each machine's BFS now instead of inside the first query.
	for t := 0; t < part.M; t++ {
		part.BorderDistances(t)
	}
	return s, nil
}

// initObs builds the service's metrics registry. Write-path families
// (latencies, outcome counters) are pre-resolved; everything already
// counted by an existing atomic — cache hits, comm bytes, kernel
// selections — surfaces through polled families read at scrape time,
// so the query path pays nothing extra for them.
func (s *Service) initObs() {
	reg := obs.NewRegistry()
	s.reg = reg
	s.obsQueryLatency = reg.HistogramVec("rads_query_seconds",
		"Query execution latency by engine.", "engine", nil)
	s.obsWaitLatency = reg.Histogram("rads_admission_wait_seconds",
		"Time queries waited in the admission queue before running.", nil)
	s.obsQueries = reg.CounterVec("rads_queries_total",
		"Queries finished by outcome.", "outcome")
	s.obsTransport = reg.HistogramVec("rads_transport_latency_seconds",
		"Machine-to-machine exchange latency by message kind.", "kind", nil)
	s.obsSteals = reg.Counter("rads_steals_total",
		"Region groups stolen via shareR across all queries.")
	reg.CounterFunc("rads_cache_hits_total",
		"Result-cache hits.", s.cacheHits.Load)
	reg.CounterFunc("rads_cache_misses_total",
		"Result-cache misses.", s.cacheMisses.Load)
	reg.CounterFunc("rads_tree_nodes_total",
		"Successful partial matches (search-tree nodes) across all runs.",
		s.treeNodes.Load)
	reg.CounterFunc("rads_frontier_splits_total",
		"R-Meef rounds whose region-group frontier was expanded across the worker pool.",
		s.frontierSplits.Load)
	reg.GaugeFunc("rads_queries_running",
		"Queries currently executing.", func() float64 {
			return float64(s.running.Load())
		})
	reg.GaugeFunc("rads_queries_queued",
		"Queries waiting for an admission slot.", func() float64 {
			return float64(s.queued.Load())
		})
	reg.CounterVecFunc("rads_transport_bytes_total",
		"Simulated network bytes by message kind.", "kind", func() map[string]int64 {
			s.kindMu.Lock()
			defer s.kindMu.Unlock()
			out := make(map[string]int64, len(s.commByKind))
			for k, v := range s.commByKind {
				out[k] = v
			}
			return out
		})
	reg.CounterVecFunc("rads_transport_messages_total",
		"Simulated network messages by message kind.", "kind", func() map[string]int64 {
			s.kindMu.Lock()
			defer s.kindMu.Unlock()
			out := make(map[string]int64, len(s.commMsgsByKind))
			for k, v := range s.commMsgsByKind {
				out[k] = v
			}
			return out
		})
	// Kernel counters are process-wide (the intersection kernels have no
	// per-query identity); serving processes turn counting on and expose
	// the totals.
	graph.SetKernelCounting(true)
	reg.CounterVecFunc("rads_kernel_selections_total",
		"Adaptive intersection kernel selections.", "kernel", graph.KernelCounts)
}

// Metrics exposes the service's metrics registry (radserve mounts it
// at /metrics).
func (s *Service) Metrics() *obs.Registry { return s.reg }

// RecentProfiles returns up to n recent query profiles, newest first.
func (s *Service) RecentProfiles(n int) []*obs.Profile { return s.profiles.Recent(n) }

// SlowProfiles returns up to n slow-query profiles, newest first
// (empty unless Config.SlowQuery is set).
func (s *Service) SlowProfiles(n int) []*obs.Profile { return s.slow.Recent(n) }

// FindProfile returns the retained profile of query id, or nil if it
// has aged out of both rings.
func (s *Service) FindProfile(id uint64) *obs.Profile {
	if p := s.profiles.Find(id); p != nil {
		return p
	}
	return s.slow.Find(id)
}

// Partition exposes the resident partition (read-only by convention).
func (s *Service) Partition() *partition.Partition { return s.part }

// Artifacts exposes the prepared-artifact cache, for warm-start
// persistence: a serving binary exports it on shutdown and seeds it on
// boot through the snapshot codec.
func (s *Service) Artifacts() *engine.ArtifactCache { return s.artifacts }

// RegisterEngine adds (or replaces) an engine under name. Queries name
// engines by these keys. Engines registered here are external: the
// service cannot see their capabilities, so unsupported options are
// the function's own responsibility to reject.
func (s *Service) RegisterEngine(name string, fn EngineFunc) error {
	if name == "" || fn == nil {
		return errors.New("service: engine needs a name and a function")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.engines[name] = engineEntry{fn: fn}
	return nil
}

// RegisterEngineObject adds (or replaces) a full engine.Engine under
// its own name, with its declared capabilities visible to admission
// and routed through the service's artifact cache — unlike the
// capability-blind RegisterEngine. Cluster-mode radserve uses this to
// swap the in-process RADS engine for the remote coordinator.
func (s *Service) RegisterEngineObject(e engine.Engine) error {
	if e == nil {
		return errors.New("service: nil engine")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	caps := e.Capabilities()
	s.engines[e.Name()] = engineEntry{fn: s.registryEngine(e), caps: &caps}
	return nil
}

// Submit enqueues q and returns its Handle immediately. The context
// governs the query's whole lifetime: cancelling it aborts the query
// whether it is still queued or already running (engines that support
// cancellation stop mid-run). Submit itself never blocks on admission.
func (s *Service) Submit(ctx context.Context, q Query) (*Handle, error) {
	if q.Pattern == nil {
		return nil, errors.New("service: query has no pattern")
	}
	if n := q.Pattern.N(); n > MaxPatternVertices {
		return nil, fmt.Errorf("service: pattern %s has %d vertices (max %d)", q.Pattern.Name, n, MaxPatternVertices)
	}
	if !q.Pattern.IsConnected() {
		return nil, fmt.Errorf("service: pattern %s is not connected", q.Pattern.Name)
	}
	engineName := q.Engine
	if engineName == "" {
		engineName = s.cfg.DefaultEngine
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Canonicalization is pure CPU on the caller's pattern; keep it
	// outside the service lock so an expensive pattern only costs its
	// own request, and skip it entirely for queries the cache can
	// never serve (an empty key disables cache ops downstream).
	var key string
	if s.cache != nil && !q.NoCache && !q.Stream {
		key = q.Pattern.CanonicalKey()
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	ent, ok := s.engines[engineName]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: unknown engine %q", engineName)
	}
	// Reject unsupported options up front when the engine's declared
	// capabilities are known, instead of failing mid-run.
	if q.Stream && ent.caps != nil && !ent.caps.Streaming {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: engine %s cannot stream embeddings: %w", engineName, engine.ErrUnsupported)
	}
	s.submitted.Add(1)

	h := newHandle(q, engineName)
	h.id = s.queryIDs.Add(1)

	// Fast path: answered motif under any labeling. Streaming queries
	// skip the cache — embeddings are not cached, only counts. The
	// cached result keeps the engine that actually produced it
	// (Seconds/CommMB are that run's numbers); CacheHit tells the
	// caller the requested engine never ran.
	if key != "" {
		if res, ok := s.cache.get(key); ok {
			s.cacheHits.Add(1)
			s.completed.Add(1)
			s.mu.Unlock()
			res.Pattern = q.Pattern.Name
			res.CacheHit = true
			res.Queued = 0 // this request never queued; don't echo the original run's wait
			s.recordProfile(&obs.Profile{
				ID: h.id, Query: q.Pattern.Name, Engine: res.Engine, CacheHit: true,
			}, 0)
			s.obsQueries.With("cache_hit").Inc()
			h.complete(res)
			return h, nil
		}
		s.cacheMisses.Add(1)
	}

	// Admission: grab a free slot right now if one exists; otherwise
	// join the queue (bounded by MaxQueued). Doing the fast path under
	// the lock keeps the queued gauge honest — it only ever counts
	// queries that found every slot taken.
	admitted := false
	select {
	case s.sem <- struct{}{}:
		admitted = true
	default:
		if int(s.queued.Load()) >= s.cfg.MaxQueued {
			s.rejected.Add(1)
			s.mu.Unlock()
			return nil, fmt.Errorf("%w (%d waiting)", ErrOverloaded, s.cfg.MaxQueued)
		}
		s.queued.Add(1)
	}
	s.wg.Add(1)
	s.mu.Unlock()

	go s.serve(ctx, h, ent.fn, key, admitted)
	return h, nil
}

// serve runs one admitted-or-queued query to completion.
func (s *Service) serve(ctx context.Context, h *Handle, fn EngineFunc, key string, admitted bool) {
	defer s.wg.Done()
	enqueued := time.Now()

	if !admitted {
		// Wait for a slot, the client giving up, or shutdown.
		select {
		case s.sem <- struct{}{}:
			// Winning a slot races with shutdown: if Close already
			// began, honour its contract (queued queries fail) rather
			// than letting a freed slot sneak this query through.
			select {
			case <-s.closing:
				<-s.sem
				s.queued.Add(-1)
				s.failed.Add(1)
				h.fail(ErrClosed)
				return
			default:
			}
		case <-ctx.Done():
			s.queued.Add(-1)
			s.cancelled.Add(1)
			h.fail(fmt.Errorf("service: query %q cancelled while queued: %w", h.query.Pattern.Name, ctx.Err()))
			return
		case <-s.closing:
			s.queued.Add(-1)
			s.failed.Add(1)
			h.fail(ErrClosed)
			return
		}
		s.queued.Add(-1)
	}
	s.running.Add(1)
	defer func() {
		s.running.Add(-1)
		<-s.sem
	}()
	queuedFor := time.Since(enqueued)
	s.obsWaitLatency.Observe(queuedFor.Seconds())

	// Re-check the cache: an identical motif may have completed while
	// this query waited in the queue. This lookup supersedes the miss
	// recorded at Submit — compensate it so hits+misses tracks queries,
	// not lookups.
	if key != "" {
		if res, ok := s.cache.get(key); ok {
			s.cacheHits.Add(1)
			s.cacheMisses.Add(-1)
			s.completed.Add(1)
			res.Pattern = h.query.Pattern.Name
			res.CacheHit = true
			res.Queued = queuedFor
			s.recordProfile(&obs.Profile{
				ID: h.id, Query: h.query.Pattern.Name, Engine: res.Engine,
				CacheHit: true, QueuedSeconds: queuedFor.Seconds(),
			}, 0)
			s.obsQueries.With("cache_hit").Inc()
			h.complete(res)
			return
		}
	}

	trace := obs.NewTrace()
	req := EngineRequest{
		Part:    s.part,
		Pattern: h.query.Pattern,
		Metrics: cluster.NewMetrics(s.part.M),
		Trace:   trace,
		QueryID: h.id,
	}
	// Per-kind exchange latencies flow straight into the shared
	// histogram family; installed before the engine builds transports.
	req.Metrics.SetLatencyObserver(func(kind string, seconds float64) {
		s.obsTransport.With(kind).Observe(seconds)
	})
	if s.cfg.QueryBudgetBytes > 0 {
		req.Budget = cluster.NewMemBudget(s.part.M, s.cfg.QueryBudgetBytes)
	}
	if h.query.Stream {
		req.OnEmbedding = func(machine int, f []graph.VertexID) {
			cp := append([]graph.VertexID(nil), f...)
			select {
			case h.emb <- cp:
			case <-ctx.Done():
			}
		}
	}

	s.engineRuns.Add(1)
	began := time.Now()
	res, err := fn(ctx, req)
	elapsed := time.Since(began)
	s.accountComm(req.Metrics)
	if err != nil {
		// A context cancellation is the client's doing (disconnect or
		// deliberate stream truncation), not a service failure. A down
		// worker is a failure but a distinguishable one: the outcome
		// label separates cluster unavailability from query errors.
		outcome := "error"
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			s.cancelled.Add(1)
			outcome = "cancelled"
		case errors.Is(err, rads.ErrWorkerDown):
			s.failed.Add(1)
			outcome = "unavailable"
		default:
			s.failed.Add(1)
		}
		s.obsQueries.With(outcome).Inc()
		s.obsQueryLatency.With(h.engine).Observe(elapsed.Seconds())
		prof := trace.Snapshot(elapsed)
		prof.ID, prof.Query, prof.Engine = h.id, h.query.Pattern.Name, h.engine
		prof.QueuedSeconds = queuedFor.Seconds()
		prof.Error = err.Error()
		s.recordProfile(prof, elapsed)
		h.fail(fmt.Errorf("service: engine %s on %s: %w", h.engine, h.query.Pattern.Name, err))
		return
	}

	// Finish the profile: engines that trace hand one back built from
	// the shared trace; for everything else the run is a single opaque
	// "execute" phase so every profile accounts its wall time.
	prof := res.Profile
	if prof == nil {
		trace.AddPhase("execute", -1, elapsed)
		prof = trace.Snapshot(elapsed)
	}
	prof.ID, prof.Query, prof.Engine = h.id, h.query.Pattern.Name, h.engine
	prof.QueuedSeconds = queuedFor.Seconds()
	if res.OOM {
		s.obsQueries.With("oom").Inc()
	} else {
		s.obsQueries.With("ok").Inc()
	}
	s.obsQueryLatency.With(h.engine).Observe(res.Seconds)
	s.obsSteals.Add(int64(prof.Steals))
	s.recordProfile(prof, elapsed)

	s.treeNodes.Add(res.TreeNodes)
	s.frontierSplits.Add(res.FrontierSplits)
	if res.FrontierSplits > 0 {
		s.cfg.Events.Recordf("frontier_split", -1,
			"query %d (%s): %d huge-group frontier splits", h.id, h.query.Pattern.Name, res.FrontierSplits)
	}
	out := Result{
		Pattern:   h.query.Pattern.Name,
		Canonical: key,
		Engine:    h.engine,
		Total:     res.Total,
		TreeNodes: res.TreeNodes,
		Seconds:   res.Seconds,
		CommMB:    float64(req.Metrics.TotalBytes()) / (1 << 20),
		OOM:       res.OOM,
		Queued:    queuedFor,
	}
	// The per-query budget object sees in-process charges; engines that
	// run their machines elsewhere (the cluster coordinator) report the
	// remote peaks through the result instead. Surface whichever view
	// is larger, so cluster-mode peak_mb is no longer silently zero.
	peak := res.PeakMemBytes
	if req.Budget != nil && req.Budget.MaxPeak() > peak {
		peak = req.Budget.MaxPeak()
	}
	if peak > 0 {
		out.PeakMB = float64(peak) / (1 << 20)
	}
	// Cache completed counts only: an OOM verdict depends on the
	// budget, not the pattern, and streams were never materialized.
	// The cached copy drops the profile — it describes this run, not
	// the future requests the cache will answer.
	if key != "" && !res.OOM {
		s.cache.put(key, out)
	}
	out.QueryID = h.id
	out.Profile = prof
	s.completed.Add(1)
	h.complete(out)
}

// recordProfile retains a finished query's profile in the recent ring
// and, past the slow-query threshold, in the slow ring + callback.
func (s *Service) recordProfile(p *obs.Profile, elapsed time.Duration) {
	if p == nil {
		return
	}
	s.profiles.Append(p)
	if s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery {
		s.slow.Append(p)
		s.cfg.Events.Recordf("slow_query", -1,
			"query %d (%s, %s) took %.3fs", p.ID, p.Query, p.Engine, elapsed.Seconds())
		if s.cfg.OnSlowQuery != nil {
			s.cfg.OnSlowQuery(p)
		}
	}
}

func (s *Service) accountComm(m *cluster.Metrics) {
	if m == nil {
		return
	}
	s.commBytes.Add(m.TotalBytes())
	s.commMessages.Add(m.TotalMessages())
	s.kindMu.Lock()
	for k, v := range m.ByKind() {
		s.commByKind[k] += v
	}
	for k, v := range m.MessagesByKind() {
		s.commMsgsByKind[k] += v
	}
	s.kindMu.Unlock()
}

// Close stops admitting queries, fails everything still queued with
// ErrClosed, waits for running queries to finish, and returns. It is
// idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.closing)
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Stats is a point-in-time snapshot of the service, the /stats payload
// of radserve.
type Stats struct {
	Machines  int     `json:"machines"`
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	EdgeCut   int64   `json:"edge_cut"`
	Balance   float64 `json:"balance"`
	UptimeSec float64 `json:"uptime_sec"`

	Submitted  int64 `json:"submitted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Cancelled  int64 `json:"cancelled"`
	Rejected   int64 `json:"rejected"`
	Running    int64 `json:"running"`
	Queued     int64 `json:"queued"`
	EngineRuns int64 `json:"engine_runs"`

	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`

	// TreeNodesTotal accumulates the search-tree nodes of every engine
	// run that reported them — the service-level throughput numerator
	// (tree-nodes/sec against UptimeSec).
	TreeNodesTotal int64 `json:"tree_nodes_total"`
	// FrontierSplits accumulates R-Meef rounds expanded across the
	// worker pool because a region group's frontier exceeded the
	// HugeFrontier threshold.
	FrontierSplits int64 `json:"frontier_splits"`

	// Prepared-artifact cache (the generalization of the old RADS-only
	// plan catalog): entries across all engines plus accounted bytes.
	ArtifactsCached int   `json:"artifacts_cached"`
	ArtifactBytes   int64 `json:"artifact_bytes"`

	CommBytes      int64            `json:"comm_bytes"`
	CommMessages   int64            `json:"comm_messages"`
	CommByKind     map[string]int64 `json:"comm_by_kind,omitempty"`
	CommMsgsByKind map[string]int64 `json:"comm_msgs_by_kind,omitempty"`

	Engines []string `json:"engines"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Machines:       s.part.M,
		Vertices:       s.part.G.NumVertices(),
		Edges:          int64(s.part.G.NumEdges()),
		EdgeCut:        s.edgeCut,
		Balance:        s.balance,
		UptimeSec:      time.Since(s.start).Seconds(),
		Submitted:      s.submitted.Load(),
		Completed:      s.completed.Load(),
		Failed:         s.failed.Load(),
		Cancelled:      s.cancelled.Load(),
		Rejected:       s.rejected.Load(),
		Running:        s.running.Load(),
		Queued:         s.queued.Load(),
		EngineRuns:     s.engineRuns.Load(),
		CacheHits:      s.cacheHits.Load(),
		CacheMisses:    s.cacheMisses.Load(),
		TreeNodesTotal: s.treeNodes.Load(),
		FrontierSplits: s.frontierSplits.Load(),
		CommBytes:      s.commBytes.Load(),
		CommMessages:   s.commMessages.Load(),
		CommByKind:     make(map[string]int64),
		CommMsgsByKind: make(map[string]int64),
	}
	s.kindMu.Lock()
	for k, v := range s.commByKind {
		st.CommByKind[k] += v
	}
	for k, v := range s.commMsgsByKind {
		st.CommMsgsByKind[k] += v
	}
	s.kindMu.Unlock()
	st.ArtifactsCached = s.artifacts.Len()
	st.ArtifactBytes = s.artifacts.SizeBytes()
	s.mu.Lock()
	if s.cache != nil {
		st.CacheEntries = s.cache.len()
	}
	for name := range s.engines {
		st.Engines = append(st.Engines, name)
	}
	s.mu.Unlock()
	sort.Strings(st.Engines)
	return st
}
