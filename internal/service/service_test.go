package service_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rads/internal/gen"
	"rads/internal/graph"
	"rads/internal/localenum"
	"rads/internal/pattern"
	"rads/internal/service"
)

func testGraph() *graph.Graph { return gen.Community(8, 25, 0.2, 42) }

func openService(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	svc, err := service.Open(testGraph(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// blockingEngine is a test engine that parks until released, tracking
// how many invocations run concurrently.
type blockingEngine struct {
	running, maxRunning, calls atomic.Int64
	started                    chan struct{}
	release                    chan struct{}
}

func newBlockingEngine(n int) *blockingEngine {
	return &blockingEngine{started: make(chan struct{}, n), release: make(chan struct{})}
}

func (b *blockingEngine) run(ctx context.Context, req service.EngineRequest) (service.EngineResult, error) {
	b.calls.Add(1)
	cur := b.running.Add(1)
	defer b.running.Add(-1)
	for {
		m := b.maxRunning.Load()
		if cur <= m || b.maxRunning.CompareAndSwap(m, cur) {
			break
		}
	}
	b.started <- struct{}{}
	select {
	case <-b.release:
		return service.EngineResult{Total: 1}, nil
	case <-ctx.Done():
		return service.EngineResult{}, ctx.Err()
	}
}

func TestCountsMatchOracleAcrossEngines(t *testing.T) {
	g := testGraph()
	svc, err := service.Open(g, service.Config{Machines: 4, MaxConcurrent: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	patterns := []*pattern.Pattern{pattern.Triangle(), pattern.Path(3), pattern.Cycle(4)}
	engines := []string{"RADS", "PSgL", "SEED"}
	for _, p := range patterns {
		want := localenum.Count(g, p, localenum.Options{})
		for _, eng := range engines {
			h, err := svc.Submit(context.Background(), service.Query{Pattern: p, Engine: eng, NoCache: true})
			if err != nil {
				t.Fatalf("%s/%s: %v", eng, p.Name, err)
			}
			res, err := h.Result(context.Background())
			if err != nil {
				t.Fatalf("%s/%s: %v", eng, p.Name, err)
			}
			if res.Total != want {
				t.Errorf("%s/%s: got %d embeddings, oracle says %d", eng, p.Name, res.Total, want)
			}
		}
	}
}

// TestAdmissionCap floods one Service with more queries than the
// concurrency cap and asserts (under -race) that the cap holds, queued
// queries eventually complete, and nothing is lost.
func TestAdmissionCap(t *testing.T) {
	const cap, n = 2, 9
	svc := openService(t, service.Config{MaxConcurrent: cap, MaxQueued: n})
	eng := newBlockingEngine(n)
	if err := svc.RegisterEngine("block", eng.run); err != nil {
		t.Fatal(err)
	}

	handles := make([]*service.Handle, n)
	for i := range handles {
		h, err := svc.Submit(context.Background(), service.Query{
			Pattern: pattern.Triangle(), Engine: "block", NoCache: true,
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles[i] = h
	}

	// Exactly cap queries must reach the engine; the rest stay queued.
	for i := 0; i < cap; i++ {
		select {
		case <-eng.started:
		case <-time.After(5 * time.Second):
			t.Fatalf("query %d never started", i)
		}
	}
	select {
	case <-eng.started:
		t.Fatal("more than MaxConcurrent queries running")
	case <-time.After(50 * time.Millisecond):
	}
	if got := svc.Stats().Queued; got != n-cap {
		t.Fatalf("queued = %d, want %d", got, n-cap)
	}

	// Release everyone; the queue must drain completely.
	close(eng.release)
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *service.Handle) {
			defer wg.Done()
			if _, err := h.Result(context.Background()); err != nil {
				t.Errorf("query %d: %v", i, err)
			}
		}(i, h)
	}
	wg.Wait()
	if got := eng.maxRunning.Load(); got > cap {
		t.Errorf("observed %d concurrent engine runs, cap is %d", got, cap)
	}
	if got := eng.calls.Load(); got != n {
		t.Errorf("engine ran %d times, want %d", got, n)
	}
}

// TestQueuedQueryCancellation cancels a query that is still waiting
// for admission and asserts it aborts cleanly without running.
func TestQueuedQueryCancellation(t *testing.T) {
	svc := openService(t, service.Config{MaxConcurrent: 1})
	eng := newBlockingEngine(4)
	if err := svc.RegisterEngine("block", eng.run); err != nil {
		t.Fatal(err)
	}

	blocker, err := svc.Submit(context.Background(), service.Query{
		Pattern: pattern.Triangle(), Engine: "block", NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-eng.started // the slot is now held

	ctx, cancel := context.WithCancel(context.Background())
	queued, err := svc.Submit(ctx, service.Query{
		Pattern: pattern.Triangle(), Engine: "block", NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := queued.Result(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued query returned %v, want context.Canceled", err)
	}
	if got := eng.calls.Load(); got != 1 {
		t.Fatalf("engine ran %d times; the cancelled query must never run", got)
	}

	close(eng.release)
	if _, err := blocker.Result(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestOverloadRejection fills the queue past MaxQueued and asserts
// Submit fails fast with ErrOverloaded instead of queueing unboundedly.
func TestOverloadRejection(t *testing.T) {
	svc := openService(t, service.Config{MaxConcurrent: 1, MaxQueued: 1})
	eng := newBlockingEngine(4)
	if err := svc.RegisterEngine("block", eng.run); err != nil {
		t.Fatal(err)
	}
	submit := func() (*service.Handle, error) {
		return svc.Submit(context.Background(), service.Query{
			Pattern: pattern.Triangle(), Engine: "block", NoCache: true,
		})
	}
	h1, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	<-eng.started
	h2, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := submit(); !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("third submit returned %v, want ErrOverloaded", err)
	}
	close(eng.release)
	for _, h := range []*service.Handle{h1, h2} {
		if _, err := h.Result(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResultCache asserts that a second submission of an isomorphic
// pattern is served from cache without engine work, and that a
// different pattern misses.
func TestResultCache(t *testing.T) {
	g := testGraph()
	svc, err := service.Open(g, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// path3 centered at vertex 1 vs an isomorphic relabeling centered
	// at vertex 0 — different labeled forms, same canonical form.
	p1 := pattern.New("vee", 3, 0, 1, 1, 2)
	p2 := pattern.New("vee-relabeled", 3, 1, 0, 0, 2)
	if pattern.Format(p1) == pattern.Format(p2) {
		t.Fatal("test patterns must differ as labeled graphs")
	}
	if !p1.IsIsomorphicTo(p2) {
		t.Fatal("test patterns must be isomorphic")
	}

	h1, err := svc.Submit(context.Background(), service.Query{Pattern: p1})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := h1.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Fatal("first submission must not be a cache hit")
	}
	runsAfterFirst := svc.Stats().EngineRuns

	h2, err := svc.Submit(context.Background(), service.Query{Pattern: p2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h2.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("isomorphic resubmission must hit the cache")
	}
	if r2.Total != r1.Total {
		t.Fatalf("cached count %d != original %d", r2.Total, r1.Total)
	}
	if got := svc.Stats().EngineRuns; got != runsAfterFirst {
		t.Fatalf("cache hit ran the engine (%d runs, want %d)", got, runsAfterFirst)
	}

	// A genuinely different pattern misses and runs the engine.
	h3, err := svc.Submit(context.Background(), service.Query{Pattern: pattern.Triangle()})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := h3.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHit {
		t.Fatal("different pattern must miss the cache")
	}
	if got := svc.Stats().EngineRuns; got != runsAfterFirst+1 {
		t.Fatalf("cache miss must run the engine (%d runs, want %d)", got, runsAfterFirst+1)
	}
	if want := localenum.Count(g, pattern.Triangle(), localenum.Options{}); r3.Total != want {
		t.Fatalf("triangle count %d, oracle says %d", r3.Total, want)
	}
}

// TestStreamedEmbeddings runs a streaming query and validates every
// delivered embedding is a genuine triangle.
func TestStreamedEmbeddings(t *testing.T) {
	g := testGraph()
	svc, err := service.Open(g, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	h, err := svc.Submit(context.Background(), service.Query{Pattern: pattern.Triangle(), Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for f := range h.Embeddings() {
		if len(f) != 3 {
			t.Fatalf("embedding has %d vertices, want 3", len(f))
		}
		if !g.HasEdge(f[0], f[1]) || !g.HasEdge(f[1], f[2]) || !g.HasEdge(f[0], f[2]) {
			t.Fatalf("%v is not a triangle in the data graph", f)
		}
		n++
	}
	res, err := h.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != n {
		t.Fatalf("streamed %d embeddings but result says %d", n, res.Total)
	}
	if want := localenum.Count(g, pattern.Triangle(), localenum.Options{}); n != want {
		t.Fatalf("streamed %d triangles, oracle says %d", n, want)
	}
}

func TestCloseFailsQueuedAndRejectsNew(t *testing.T) {
	svc, err := service.Open(testGraph(), service.Config{MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng := newBlockingEngine(4)
	if err := svc.RegisterEngine("block", eng.run); err != nil {
		t.Fatal(err)
	}
	blocker, err := svc.Submit(context.Background(), service.Query{
		Pattern: pattern.Triangle(), Engine: "block", NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-eng.started
	queued, err := svc.Submit(context.Background(), service.Query{
		Pattern: pattern.Triangle(), Engine: "block", NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan error, 1)
	go func() { closed <- svc.Close() }()
	// The queued query must fail with ErrClosed; the running one is
	// allowed to finish once released.
	if _, err := queued.Result(context.Background()); !errors.Is(err, service.ErrClosed) {
		t.Fatalf("queued query after Close returned %v, want ErrClosed", err)
	}
	close(eng.release)
	if _, err := blocker.Result(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(context.Background(), service.Query{Pattern: pattern.Triangle()}); !errors.Is(err, service.ErrClosed) {
		t.Fatalf("submit after Close returned %v, want ErrClosed", err)
	}
}

func TestUnknownEngineAndBadPattern(t *testing.T) {
	svc := openService(t, service.Config{})
	if _, err := svc.Submit(context.Background(), service.Query{Pattern: pattern.Triangle(), Engine: "nope"}); err == nil {
		t.Fatal("unknown engine must fail")
	}
	disconnected := pattern.New("disc", 4, 0, 1, 2, 3)
	if _, err := svc.Submit(context.Background(), service.Query{Pattern: disconnected}); err == nil {
		t.Fatal("disconnected pattern must fail")
	}
	if _, err := svc.Submit(context.Background(), service.Query{}); err == nil {
		t.Fatal("nil pattern must fail")
	}
}
