package snapshot

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rads/internal/engine"
)

const artifactsMagic = "RADSARTS"

// artifactEntry is one cache entry on disk. The artifact travels as a
// gob interface value: every concrete artifact type (rads.PlanArtifact,
// Crystal's index wrapper, anything a third-party engine registers)
// self-describes through gob.Register in its owning package, which
// keeps this codec generic — it never switches on engine names.
type artifactEntry struct {
	Key string
	Art engine.Artifact
}

// ArtifactsPath returns dir's artifact file path.
func ArtifactsPath(dir string) string { return filepath.Join(dir, artifactsName) }

// WriteArtifacts persists the prepared-artifact entries (as exported
// by engine.ArtifactCache.Export) into dir, sorted by key for a
// deterministic file.
func WriteArtifacts(dir string, entries map[string]engine.Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f, err := os.Create(ArtifactsPath(dir))
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(header{Magic: artifactsMagic, Version: Version}); err != nil {
		f.Close()
		return fmt.Errorf("snapshot: artifacts: %w", err)
	}
	if err := enc.Encode(len(keys)); err != nil {
		f.Close()
		return fmt.Errorf("snapshot: artifacts: %w", err)
	}
	for _, k := range keys {
		if err := enc.Encode(artifactEntry{Key: k, Art: entries[k]}); err != nil {
			f.Close()
			return fmt.Errorf("snapshot: artifact %q: %w", k, err)
		}
	}
	return f.Close()
}

// ReadArtifacts loads dir's artifact entries; a missing file is an
// empty map, not an error (snapshots predating the artifact dump, or
// a service that never prepared anything).
func ReadArtifacts(dir string) (map[string]engine.Artifact, error) {
	f, err := os.Open(ArtifactsPath(dir))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return map[string]engine.Artifact{}, nil
		}
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("snapshot: artifacts: truncated or corrupt header: %w", decodeErr(err))
	}
	if h.Magic != artifactsMagic {
		return nil, fmt.Errorf("snapshot: not a rads artifact file (magic %q)", h.Magic)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("%w: artifact file has version %d, this binary reads %d", ErrVersion, h.Version, Version)
	}
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("snapshot: artifacts: truncated or corrupt count: %w", decodeErr(err))
	}
	out := make(map[string]engine.Artifact, n)
	for i := 0; i < n; i++ {
		var e artifactEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("snapshot: artifacts: truncated after %d of %d entries: %w", i, n, decodeErr(err))
		}
		out[e.Key] = e.Art
	}
	return out, nil
}
