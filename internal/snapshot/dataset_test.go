package snapshot_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rads/internal/dataset"
	"rads/internal/graph"
	"rads/internal/localenum"
	"rads/internal/partition"
	"rads/internal/pattern"
	"rads/internal/snapshot"
)

// writeDatasetFixture ingests the committed karate fixture into dir as
// a registered .radsgraph and returns its manifest (Path relative to
// dir) plus the CSR store.
func writeDatasetFixture(t *testing.T, dir string) (dataset.Manifest, *dataset.CSR) {
	t.Helper()
	c, st, err := dataset.Ingest(filepath.Join("..", "dataset", "testdata", "karate.txt"), dataset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gpath := filepath.Join(dir, "karate.radsgraph")
	if err := dataset.WriteFile(gpath, c, st.DegreeOrd); err != nil {
		t.Fatal(err)
	}
	man, err := dataset.NewManifest("karate", gpath, c, st, "karate.txt")
	if err != nil {
		t.Fatal(err)
	}
	// Snapshots live in other directories; record the absolute path,
	// the way radserve does before WriteDataset.
	man.Path = gpath
	return man, c
}

// TestDatasetBackedSnapshot: shards of a dataset-backed snapshot carry
// no adjacency, reference the .radsgraph by checksum, and restore
// partitions that enumerate identically to the original.
func TestDatasetBackedSnapshot(t *testing.T) {
	dsDir := t.TempDir()
	man, c := writeDatasetFixture(t, dsDir)
	part := partition.KWay(c, 3, 7)
	want := localenum.Count(c, pattern.Triangle(), localenum.Options{})

	snapDir := t.TempDir()
	if err := snapshot.WriteDataset(snapDir, part, "karate", man); err != nil {
		t.Fatal(err)
	}

	// Coordinator warm start (recorded path is absolute → found directly).
	full, fman, err := snapshot.OpenPartition(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	if fman.Dataset == nil || fman.Dataset.Checksum != man.Checksum {
		t.Fatalf("manifest dataset ref = %+v, want checksum %s", fman.Dataset, man.Checksum)
	}
	if got := localenum.Count(full.G, pattern.Triangle(), localenum.Options{}); got != want {
		t.Fatalf("warm-started partition counts %d triangles, want %d", got, want)
	}
	for v, o := range part.Owner {
		if full.Owner[v] != o {
			t.Fatalf("owner[%d] = %d, want %d", v, full.Owner[v], o)
		}
	}

	// Worker shard open: same graph, machine's border distances warm.
	shard, _, err := snapshot.OpenShard(snapDir, 1)
	if err != nil {
		t.Fatal(err)
	}
	bd := shard.BorderDistances(1)
	wantBD := part.BorderDistances(1)
	if len(bd) != len(wantBD) {
		t.Fatalf("border distances: %d entries, want %d", len(bd), len(wantBD))
	}
	for v, d := range wantBD {
		if bd[v] != d {
			t.Fatalf("BD(%d) = %d, want %d", v, bd[v], d)
		}
	}
}

// TestDatasetSnapshotSearchDirs: when the recorded path is stale (the
// dataset moved hosts), the open falls back to the snapshot directory
// and then the caller's dataset dirs, always pinned to the checksum.
func TestDatasetSnapshotSearchDirs(t *testing.T) {
	dsDir := t.TempDir()
	man, c := writeDatasetFixture(t, dsDir)
	part := partition.KWay(c, 2, 7)
	snapDir := t.TempDir()
	man.Path = "/nonexistent/elsewhere/karate.radsgraph" // simulate a foreign host's layout
	if err := snapshot.WriteDataset(snapDir, part, "karate", man); err != nil {
		t.Fatal(err)
	}

	// No search dir: must fail loudly, naming the dataset.
	if _, _, err := snapshot.OpenPartition(snapDir); err == nil {
		t.Fatal("open succeeded without the dataset being findable")
	}

	// With the worker's -dataset-dir: found by base name, verified by
	// checksum.
	shard, _, err := snapshot.OpenShard(snapDir, 0, dsDir)
	if err != nil {
		t.Fatal(err)
	}
	if shard.G.NumEdges() != c.NumEdges() {
		t.Fatalf("shard graph has %d edges, want %d", shard.G.NumEdges(), c.NumEdges())
	}

	// A swapped file under the search dir must be rejected by checksum.
	evil := t.TempDir()
	small, _, err := dataset.IngestReaders(strings.NewReader("0 1\n"), strings.NewReader("0 1\n"), dataset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteFile(filepath.Join(evil, "karate.radsgraph"), small, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := snapshot.OpenShard(snapDir, 0, evil); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("swapped dataset bytes: err = %v, want checksum mismatch", err)
	}
}

// TestDatasetSnapshotAgainstPlainSnapshot: a dataset-backed snapshot
// and a plain one over the same store restore partitions with equal
// counts — the two persistence paths may never diverge.
func TestDatasetSnapshotAgainstPlainSnapshot(t *testing.T) {
	dsDir := t.TempDir()
	man, c := writeDatasetFixture(t, dsDir)
	part := partition.KWay(c, 3, 7)

	plainDir, dsSnapDir := t.TempDir(), t.TempDir()
	if err := snapshot.Write(plainDir, part, "karate"); err != nil {
		t.Fatal(err)
	}
	if err := snapshot.WriteDataset(dsSnapDir, part, "karate", man); err != nil {
		t.Fatal(err)
	}
	// Dataset-backed shards must not re-encode adjacency: with the
	// same partition and border distances, each must be smaller than
	// its adjacency-carrying plain sibling.
	for t2 := 0; t2 < part.M; t2++ {
		name := fmt.Sprintf("shard-%03d.snap", t2)
		pi, err := os.Stat(filepath.Join(plainDir, name))
		if err != nil {
			t.Fatal(err)
		}
		di, err := os.Stat(filepath.Join(dsSnapDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if di.Size() >= pi.Size() {
			t.Errorf("%s: dataset-backed %d bytes >= plain %d — adjacency re-encoded?", name, di.Size(), pi.Size())
		}
	}

	plain, _, err := snapshot.OpenPartition(plainDir)
	if err != nil {
		t.Fatal(err)
	}
	backed, _, err := snapshot.OpenPartition(dsSnapDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []*pattern.Pattern{pattern.Triangle(), pattern.New("square", 4, 0, 1, 1, 2, 2, 3, 3, 0)} {
		a := localenum.Count(plain.G, q, localenum.Options{})
		b := localenum.Count(backed.G, q, localenum.Options{})
		if a != b {
			t.Errorf("%s: plain snapshot %d, dataset-backed %d", q.Name, a, b)
		}
	}
	var adjChecks int
	for v := 0; v < plain.G.NumVertices(); v++ {
		a, b := plain.G.Adj(graph.VertexID(v)), backed.G.Adj(graph.VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d: adjacency diverges", v)
			}
			adjChecks++
		}
	}
	if adjChecks == 0 {
		t.Fatal("no adjacency compared")
	}
}

// TestOpenShardsSharesDatasetGraph: a worker hosting several machines
// of a dataset-backed snapshot must get one shared CSR-backed
// partition, not one full copy per machine.
func TestOpenShardsSharesDatasetGraph(t *testing.T) {
	dsDir := t.TempDir()
	man, c := writeDatasetFixture(t, dsDir)
	part := partition.KWay(c, 3, 7)
	snapDir := t.TempDir()
	if err := snapshot.WriteDataset(snapDir, part, "karate", man); err != nil {
		t.Fatal(err)
	}
	parts, _, err := snapshot.OpenShards(snapDir, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || parts[0] != parts[1] {
		t.Fatalf("dataset-backed shards should share one partition, got %p and %p", parts[0], parts[1])
	}
	for _, id := range []int{0, 2} {
		want := part.BorderDistances(id)
		got := parts[0].BorderDistances(id)
		if len(got) != len(want) {
			t.Fatalf("machine %d: %d border distances, want %d", id, len(got), len(want))
		}
	}
	if got := localenum.Count(parts[0].G, pattern.Triangle(), localenum.Options{}); got != 45 {
		t.Fatalf("shared partition counts %d triangles, want 45", got)
	}

	// Plain snapshots keep per-shard graphs (each shard only has its
	// owned adjacency, so sharing would be wrong).
	plainDir := t.TempDir()
	if err := snapshot.Write(plainDir, part, "karate"); err != nil {
		t.Fatal(err)
	}
	pparts, _, err := snapshot.OpenShards(plainDir, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pparts[0] == pparts[1] {
		t.Fatal("plain shards must not share a partition")
	}
}
