// Package snapshot is the warm-start codec of the resident service: it
// persists a partitioned data graph — one shard file per machine, each
// carrying the machine's adjacency lists, the full ownership vector and
// the machine's memoized border distances — plus the prepared-artifact
// cache, so a restarted radserve (or a freshly booted radsworker)
// loads its state from disk instead of re-partitioning and re-deriving
// it.
//
// Layout of a snapshot directory:
//
//	manifest.json   global metadata (version, machine count, graph stats)
//	shard-000.snap  machine 0: owner vector, owned adjacency, border distances
//	shard-001.snap  ...
//	artifacts.snap  optional: serialized engine.ArtifactCache entries
//
// Shard files are gob streams behind a magic+version header (the
// binary sibling of graph.WriteAdjacency's text format). The format is
// versioned: a reader confronted with a different version refuses
// loudly (ErrVersion) instead of misinterpreting bytes, and truncated
// files surface as errors, never as silently smaller graphs.
//
// A shard is self-sufficient for hosting its machine: the shard graph
// has the global vertex count, complete adjacency lists for owned
// vertices (including edges to foreign endpoints, per Section 2's "an
// edge resides in a machine if either endpoint does"), and only the
// implied stubs elsewhere — exactly the local knowledge the RADS
// distribution discipline permits.
package snapshot

import (
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rads/internal/dataset"
	"rads/internal/graph"
	"rads/internal/partition"
)

// Version is the on-disk format version this binary reads and writes.
// Version 2 added dataset-backed shards: when the partitioned graph
// came from a registered .radsgraph dataset, shards carry only the
// ownership vector and border distances and the manifest references
// the dataset by checksum — the adjacency is never re-encoded.
const Version = 2

const (
	shardMagic    = "RADSSHRD"
	manifestName  = "manifest.json"
	artifactsName = "artifacts.snap"
)

// ErrVersion marks a snapshot written by an incompatible format
// version. Callers test with errors.Is and re-partition from source.
var ErrVersion = errors.New("snapshot: format version mismatch")

// Manifest is the global metadata of a snapshot directory.
type Manifest struct {
	Version   int     `json:"version"`
	Machines  int     `json:"machines"`
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	AvgDegree float64 `json:"avg_degree"`
	Source    string  `json:"source,omitempty"`
	Created   string  `json:"created,omitempty"`

	// Dataset, when set, identifies the .radsgraph file the partition
	// was built over. Shards then omit adjacency (ExternalGraph) and
	// every open loads the CSR store instead, verified against the
	// recorded checksum.
	Dataset *dataset.Manifest `json:"dataset,omitempty"`
}

// header guards every binary snapshot file.
type header struct {
	Magic   string
	Version int
}

// shardPayload is the gob body of one shard file.
type shardPayload struct {
	ID       int
	M        int
	Vertices int     // global vertex count
	Owner    []int32 // full ownership vector (every machine needs it)

	// ExternalGraph: the adjacency lives in the dataset referenced by
	// the snapshot manifest, not in this shard; Owned and Adj are empty.
	ExternalGraph bool

	// Owned vertices and their complete adjacency lists, parallel.
	Owned []graph.VertexID
	Adj   [][]graph.VertexID

	// BorderDist is machine ID's memoized border-distance map
	// (Definition 1), persisted so a worker never re-runs the BFS.
	BorderDist map[graph.VertexID]int32
}

// Exists reports whether dir holds a snapshot (a manifest).
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Write persists part into dir (created if needed): one shard file
// per machine, then the manifest. The manifest is the commit point —
// written last, via rename — so an interrupted Write leaves a
// directory that Exists() reports false (or keeps its previous,
// complete manifest) instead of a half-written snapshot that mixes
// new and stale shards. Border distances are computed here if the
// partition has not memoized them yet — paying the BFS at snapshot
// time is the point.
func Write(dir string, part *partition.Partition, source string) error {
	return write(dir, part, source, nil)
}

// WriteDataset persists a partition whose graph came from a registered
// .radsgraph dataset. Shards then carry only the ownership vector and
// border distances — the adjacency is the dataset's CSR file,
// referenced from the manifest by checksum, so the snapshot stays
// O(n) on disk however large the graph is and every reader is
// guaranteed to enumerate over the exact bytes the coordinator
// partitioned. The caller resolves ds.Path first (absolute, or
// relative to dir): workers on the same host open it directly, workers
// elsewhere search their own -dataset-dir by file name and rely on the
// checksum for identity.
func WriteDataset(dir string, part *partition.Partition, source string, ds dataset.Manifest) error {
	return write(dir, part, source, &ds)
}

func write(dir string, part *partition.Partition, source string, ds *dataset.Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	// Invalidate any previous manifest first: the shards about to be
	// overwritten no longer match it. The artifact dump goes with it —
	// prepared artifacts are bound to the partition being replaced, and
	// seeding them against a different graph would silently corrupt
	// query results.
	for _, name := range []string{manifestName, artifactsName} {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("snapshot: %w", err)
		}
	}
	for t := 0; t < part.M; t++ {
		if err := writeShard(dir, part, t, ds != nil); err != nil {
			return err
		}
	}
	man := Manifest{
		Version:   Version,
		Machines:  part.M,
		Vertices:  part.G.NumVertices(),
		Edges:     part.G.NumEdges(),
		AvgDegree: part.G.AvgDegree(),
		Source:    source,
		Created:   time.Now().UTC().Format(time.RFC3339),
		Dataset:   ds,
	}
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

func shardPath(dir string, t int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.snap", t))
}

func writeShard(dir string, part *partition.Partition, t int, external bool) error {
	owned := part.Vertices(t)
	pay := shardPayload{
		ID:            t,
		M:             part.M,
		Vertices:      part.G.NumVertices(),
		Owner:         part.Owner,
		ExternalGraph: external,
		BorderDist:    part.BorderDistances(t),
	}
	if !external {
		pay.Owned = owned
		pay.Adj = make([][]graph.VertexID, len(owned))
		for i, v := range owned {
			pay.Adj[i] = part.G.Adj(v)
		}
	}
	f, err := os.Create(shardPath(dir, t))
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(header{Magic: shardMagic, Version: Version}); err != nil {
		f.Close()
		return fmt.Errorf("snapshot: shard %d: %w", t, err)
	}
	if err := enc.Encode(pay); err != nil {
		f.Close()
		return fmt.Errorf("snapshot: shard %d: %w", t, err)
	}
	return f.Close()
}

// ReadManifest loads and version-checks dir's manifest.
func ReadManifest(dir string) (Manifest, error) {
	var man Manifest
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return man, fmt.Errorf("snapshot: %w", err)
	}
	if err := json.Unmarshal(b, &man); err != nil {
		return man, fmt.Errorf("snapshot: bad manifest: %w", err)
	}
	if man.Version != Version {
		return man, fmt.Errorf("%w: manifest has version %d, this binary reads %d", ErrVersion, man.Version, Version)
	}
	return man, nil
}

func readShard(dir string, t int) (*shardPayload, error) {
	f, err := os.Open(shardPath(dir, t))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("snapshot: shard %d: truncated or corrupt header: %w", t, decodeErr(err))
	}
	if h.Magic != shardMagic {
		return nil, fmt.Errorf("snapshot: shard %d: not a rads shard file (magic %q)", t, h.Magic)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("%w: shard %d has version %d, this binary reads %d", ErrVersion, t, h.Version, Version)
	}
	var pay shardPayload
	if err := dec.Decode(&pay); err != nil {
		return nil, fmt.Errorf("snapshot: shard %d: truncated or corrupt payload: %w", t, decodeErr(err))
	}
	if pay.ID != t {
		return nil, fmt.Errorf("snapshot: shard file %d carries machine %d", t, pay.ID)
	}
	if len(pay.Owner) != pay.Vertices || len(pay.Owned) != len(pay.Adj) {
		return nil, fmt.Errorf("snapshot: shard %d: inconsistent payload", t)
	}
	return &pay, nil
}

// decodeErr normalizes gob's bare EOFs on truncated input.
func decodeErr(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// OpenShard loads machine id's shard from dir as a shard-backed
// Partition: the graph has complete adjacency for owned vertices (plus
// the reverse stubs those edges imply) and the machine's border
// distances pre-installed. Hosting any other machine on it would
// violate the distribution discipline. Dataset-backed shards load the
// referenced CSR store instead (checksum-verified); datasetDirs are
// extra directories searched for the .radsgraph file by name, for
// workers whose filesystem layout differs from the coordinator's.
func OpenShard(dir string, id int, datasetDirs ...string) (*partition.Partition, Manifest, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, man, err
	}
	pay, err := readShard(dir, id)
	if err != nil {
		return nil, man, err
	}
	if pay.M != man.Machines {
		return nil, man, fmt.Errorf("snapshot: shard %d says %d machines, manifest %d", id, pay.M, man.Machines)
	}
	if pay.ExternalGraph {
		g, err := openDatasetGraph(dir, man, datasetDirs)
		if err != nil {
			return nil, man, fmt.Errorf("snapshot: shard %d: %w", id, err)
		}
		part, err := partition.New(g, pay.M, pay.Owner)
		if err != nil {
			return nil, man, fmt.Errorf("snapshot: shard %d: %w", id, err)
		}
		part.InstallBorderDistances(id, pay.BorderDist)
		return part, man, nil
	}
	part, err := shardPartition(pay)
	if err != nil {
		return nil, man, err
	}
	return part, man, nil
}

// shardPartition rebuilds a plain shard's partition from its decoded
// payload: the owned adjacency (plus implied reverse stubs), the full
// ownership vector and the machine's memoized border distances.
func shardPartition(pay *shardPayload) (*partition.Partition, error) {
	b := graph.NewBuilder(pay.Vertices)
	for i, v := range pay.Owned {
		for _, u := range pay.Adj[i] {
			b.AddEdge(v, u)
		}
	}
	part, err := partition.New(b.Build(), pay.M, pay.Owner)
	if err != nil {
		return nil, fmt.Errorf("snapshot: shard %d: %w", pay.ID, err)
	}
	part.InstallBorderDistances(pay.ID, pay.BorderDist)
	return part, nil
}

// openDatasetGraph resolves a dataset-backed snapshot's CSR store: the
// manifest-recorded path first (absolute or relative to the snapshot
// directory), then the file's base name under the snapshot directory
// and each extra search directory. Wherever the bytes are found, the
// recorded checksum must match — the dataset's identity travels with
// the snapshot, not the path.
func openDatasetGraph(dir string, man Manifest, datasetDirs []string) (*dataset.CSR, error) {
	ds := man.Dataset
	if ds == nil {
		return nil, errors.New("snapshot: shard references an external dataset but the manifest records none")
	}
	candidates := []string{ds.Path}
	if !filepath.IsAbs(ds.Path) {
		candidates = []string{filepath.Join(dir, ds.Path)}
	}
	base := filepath.Base(ds.Path)
	candidates = append(candidates, filepath.Join(dir, base))
	for _, d := range datasetDirs {
		if d != "" {
			candidates = append(candidates, filepath.Join(d, base))
		}
	}
	var firstErr error
	for _, path := range candidates {
		if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
			continue
		}
		c, err := ds.OpenAt(path)
		if err == nil {
			return c, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, fmt.Errorf("snapshot: dataset %q (%s) not found at %s — pass its directory via -dataset-dir or place the file next to the snapshot",
		ds.Name, ds.Checksum, strings.Join(candidates, ", "))
}

// OpenShards opens several machines' shards at once — the radsworker
// boot path. For plain snapshots it is per-shard OpenShard. For
// dataset-backed snapshots the CSR file is resolved, checksum-verified
// and loaded exactly once, and one shared Partition hosts every
// requested machine (each machine's persisted border distances
// installed): hosting k machines costs one copy of the graph, not k.
// Sharing is safe — machines only read the partition, and the
// in-process engine already runs all its machines over one Partition.
func OpenShards(dir string, ids []int, datasetDirs ...string) ([]*partition.Partition, Manifest, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, man, err
	}
	parts := make([]*partition.Partition, len(ids))
	var shared *partition.Partition
	for i, id := range ids {
		pay, err := readShard(dir, id)
		if err != nil {
			return nil, man, err
		}
		if pay.M != man.Machines {
			return nil, man, fmt.Errorf("snapshot: shard %d says %d machines, manifest %d", id, pay.M, man.Machines)
		}
		if !pay.ExternalGraph {
			// Plain shard: its own graph of owned adjacency, built from
			// the payload already decoded above (no second read).
			part, err := shardPartition(pay)
			if err != nil {
				return nil, man, err
			}
			parts[i] = part
			continue
		}
		if shared == nil {
			g, err := openDatasetGraph(dir, man, datasetDirs)
			if err != nil {
				return nil, man, fmt.Errorf("snapshot: shard %d: %w", id, err)
			}
			shared, err = partition.New(g, pay.M, pay.Owner)
			if err != nil {
				return nil, man, fmt.Errorf("snapshot: shard %d: %w", id, err)
			}
		}
		shared.InstallBorderDistances(id, pay.BorderDist)
		parts[i] = shared
	}
	return parts, man, nil
}

// OpenPartition reassembles the full partition from every shard —
// the coordinator's warm start. Each machine's persisted border
// distances are installed, so the first query pays no BFS either.
func OpenPartition(dir string, datasetDirs ...string) (*partition.Partition, Manifest, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, man, err
	}
	var owner []int32
	var b *graph.Builder
	var g graph.Store
	bds := make([]map[graph.VertexID]int32, man.Machines)
	for t := 0; t < man.Machines; t++ {
		pay, err := readShard(dir, t)
		if err != nil {
			return nil, man, err
		}
		if pay.ExternalGraph {
			if g == nil {
				g, err = openDatasetGraph(dir, man, datasetDirs)
				if err != nil {
					return nil, man, err
				}
				owner = pay.Owner
			}
		} else {
			if b == nil {
				b = graph.NewBuilder(pay.Vertices)
				owner = pay.Owner
			}
			for i, v := range pay.Owned {
				for _, u := range pay.Adj[i] {
					b.AddEdge(v, u)
				}
			}
		}
		bds[t] = pay.BorderDist
	}
	if g == nil {
		if b == nil {
			return nil, man, fmt.Errorf("snapshot: manifest lists no machines")
		}
		g = b.Build()
	}
	part, err := partition.New(g, man.Machines, owner)
	if err != nil {
		return nil, man, fmt.Errorf("snapshot: %w", err)
	}
	for t, bd := range bds {
		part.InstallBorderDistances(t, bd)
	}
	return part, man, nil
}
