package snapshot_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"rads/internal/engine"
	_ "rads/internal/engine/all" // register engines (and their artifact gob types)
	"rads/internal/gen"
	"rads/internal/graph"
	"rads/internal/partition"
	"rads/internal/pattern"
	"rads/internal/rads"
	"rads/internal/snapshot"
)

func testPartition(t *testing.T) *partition.Partition {
	t.Helper()
	g := gen.Community(4, 18, 0.3, 41)
	return partition.KWay(g, 3, 7)
}

// TestShardRoundTrip writes a snapshot and checks each shard restores
// the machine's exact local knowledge: owned vertices, complete owned
// adjacency, ownership vector and memoized border distances.
func TestShardRoundTrip(t *testing.T) {
	part := testPartition(t)
	dir := t.TempDir()
	if err := snapshot.Write(dir, part, "test"); err != nil {
		t.Fatal(err)
	}
	if !snapshot.Exists(dir) {
		t.Fatal("Exists = false after Write")
	}
	for id := 0; id < part.M; id++ {
		shard, man, err := snapshot.OpenShard(dir, id)
		if err != nil {
			t.Fatalf("OpenShard(%d): %v", id, err)
		}
		if man.Machines != part.M || man.Vertices != part.G.NumVertices() || man.Edges != part.G.NumEdges() {
			t.Fatalf("manifest %+v does not match source", man)
		}
		if shard.M != part.M || shard.G.NumVertices() != part.G.NumVertices() {
			t.Fatalf("shard %d shape: M=%d n=%d", id, shard.M, shard.G.NumVertices())
		}
		for v, o := range part.Owner {
			if shard.Owner[v] != o {
				t.Fatalf("shard %d: owner[%d] = %d, want %d", id, v, shard.Owner[v], o)
			}
		}
		// Owned adjacency is byte-identical.
		for _, v := range part.Vertices(id) {
			want, got := part.G.Adj(v), shard.G.Adj(v)
			if len(want) != len(got) {
				t.Fatalf("shard %d: adj(%d) has %d entries, want %d", id, v, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("shard %d: adj(%d)[%d] = %d, want %d", id, v, i, got[i], want[i])
				}
			}
		}
		// Border distances restored exactly (no BFS on this path, but
		// equality against a fresh computation proves fidelity).
		want := part.BorderDistances(id)
		got := shard.BorderDistances(id)
		if len(want) != len(got) {
			t.Fatalf("shard %d: %d border distances, want %d", id, len(got), len(want))
		}
		for v, d := range want {
			if got[v] != d {
				t.Fatalf("shard %d: bd[%d] = %d, want %d", id, v, got[v], d)
			}
		}
	}
}

// TestOpenPartitionRebuildsFullGraph checks the coordinator warm path:
// all shards merged reproduce the original graph and partition.
func TestOpenPartitionRebuildsFullGraph(t *testing.T) {
	part := testPartition(t)
	dir := t.TempDir()
	if err := snapshot.Write(dir, part, "test"); err != nil {
		t.Fatal(err)
	}
	got, _, err := snapshot.OpenPartition(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.G.NumVertices() != part.G.NumVertices() || got.G.NumEdges() != part.G.NumEdges() {
		t.Fatalf("rebuilt graph %d/%d, want %d/%d",
			got.G.NumVertices(), got.G.NumEdges(), part.G.NumVertices(), part.G.NumEdges())
	}
	for v := 0; v < part.G.NumVertices(); v++ {
		a, b := part.G.Adj(graph.VertexID(v)), got.G.Adj(graph.VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("adj(%d): %d vs %d neighbours", v, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adj(%d) differs at %d", v, i)
			}
		}
	}
	if got.EdgeCut() != part.EdgeCut() {
		t.Fatalf("edge cut %d, want %d", got.EdgeCut(), part.EdgeCut())
	}
}

// TestArtifactRoundTrip persists prepared artifacts of two engines
// with genuinely different concrete types (RADS plan, Crystal clique
// index) and restores them through the generic codec.
func TestArtifactRoundTrip(t *testing.T) {
	part := testPartition(t)
	q := pattern.Triangle()
	entries := map[string]engine.Artifact{}
	for _, name := range []string{"RADS", "Crystal"} {
		e, ok := engine.Lookup(name)
		if !ok {
			t.Fatalf("engine %s not registered", name)
		}
		art, err := e.Prepare(part, q)
		if err != nil {
			t.Fatal(err)
		}
		entries[name+"\x00test"] = art
	}
	dir := t.TempDir()
	if err := snapshot.WriteArtifacts(dir, entries); err != nil {
		t.Fatal(err)
	}
	got, err := snapshot.ReadArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("restored %d artifacts, want %d", len(got), len(entries))
	}
	for key, want := range entries {
		art, ok := got[key]
		if !ok {
			t.Fatalf("artifact %q missing", key)
		}
		if art.SizeBytes() != want.SizeBytes() {
			t.Errorf("artifact %q: %d bytes, want %d", key, art.SizeBytes(), want.SizeBytes())
		}
	}
	// The restored plan must be usable, not just present.
	pa, ok := got["RADS\x00test"].(rads.PlanArtifact)
	if !ok {
		t.Fatalf("RADS artifact restored as %T", got["RADS\x00test"])
	}
	if pa.Plan == nil || len(pa.Plan.Order) != q.N() {
		t.Fatalf("restored plan malformed: %+v", pa.Plan)
	}
	// Seeding a cache with restored artifacts must make them visible.
	cache := engine.NewArtifactCache(0)
	for k, a := range got {
		cache.Seed(k, a)
	}
	if cache.Len() != len(got) || cache.SizeBytes() <= 0 {
		t.Fatalf("seeded cache: len=%d bytes=%d", cache.Len(), cache.SizeBytes())
	}
}

// TestReadArtifactsMissingFile: absence is an empty map, not an error.
func TestReadArtifactsMissingFile(t *testing.T) {
	got, err := snapshot.ReadArtifacts(t.TempDir())
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

// TestVersionMismatchRejected: a future (or past) format version is
// refused with ErrVersion everywhere — manifest, shard and artifact
// readers.
func TestVersionMismatchRejected(t *testing.T) {
	part := testPartition(t)
	dir := t.TempDir()
	if err := snapshot.Write(dir, part, "test"); err != nil {
		t.Fatal(err)
	}
	// Corrupt the manifest version.
	manPath := filepath.Join(dir, "manifest.json")
	b, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var man map[string]any
	if err := json.Unmarshal(b, &man); err != nil {
		t.Fatal(err)
	}
	man["version"] = snapshot.Version + 1
	b2, _ := json.Marshal(man)
	if err := os.WriteFile(manPath, b2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := snapshot.OpenPartition(dir); !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("OpenPartition err = %v, want ErrVersion", err)
	}
	if _, _, err := snapshot.OpenShard(dir, 0); !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("OpenShard err = %v, want ErrVersion", err)
	}
}

// TestTruncatedShardRejected: a shard cut off mid-stream errors out
// rather than yielding a silently smaller graph.
func TestTruncatedShardRejected(t *testing.T) {
	part := testPartition(t)
	dir := t.TempDir()
	if err := snapshot.Write(dir, part, "test"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "shard-000.snap")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{len(b) / 2, 8, 0} {
		if err := os.WriteFile(path, b[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := snapshot.OpenShard(dir, 0); err == nil {
			t.Fatalf("OpenShard accepted a shard truncated to %d bytes", keep)
		}
		if _, _, err := snapshot.OpenPartition(dir); err == nil {
			t.Fatalf("OpenPartition accepted a shard truncated to %d bytes", keep)
		}
	}
}

// TestTruncatedArtifactsRejected mirrors the shard truncation check
// for the artifact file.
func TestTruncatedArtifactsRejected(t *testing.T) {
	part := testPartition(t)
	e, _ := engine.Lookup("RADS")
	art, err := e.Prepare(part, pattern.Triangle())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := snapshot.WriteArtifacts(dir, map[string]engine.Artifact{"k": art}); err != nil {
		t.Fatal(err)
	}
	path := snapshot.ArtifactsPath(dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.ReadArtifacts(dir); err == nil {
		t.Fatal("ReadArtifacts accepted a truncated file")
	}
}
