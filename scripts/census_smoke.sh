#!/usr/bin/env bash
# Census smoke: end-to-end motif-census job over HTTP.
#
#   1. radsprep ingests the committed karate-club fixture into a
#      registry; radserve serves it from the CSR store.
#   2. POST /jobs submits a census k=4 job; the script polls
#      GET /jobs/{id} to completion, checking progress never regresses.
#   3. GET /jobs/{id}/result must match the golden karate histogram
#      (the same counts pinned in internal/census golden tests and
#      verified against the brute-force oracle).
#   4. The NDJSON result format and the job metrics families on
#      /metrics are asserted.
#
# CI runs this; it also works locally: ./scripts/census_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

PORT_BASE=${SMOKE_PORT_BASE:-19500}
ADDR="127.0.0.1:$PORT_BASE"

echo "== build"
go build -o "$TMP/bin/" ./cmd/radserve ./cmd/radsprep

echo "== ingest karate fixture"
"$TMP/bin/radsprep" ingest internal/dataset/testdata/karate.txt \
    -o "$TMP/reg/karate.radsgraph" -name karate -registry "$TMP/reg"

echo "== start radserve on the ingested dataset"
"$TMP/bin/radserve" -addr "$ADDR" -registry "$TMP/reg" -dataset karate \
    -machines 2 >"$TMP/serve.log" 2>&1 &
PIDS+=($!)
for _ in $(seq 1 100); do
    if curl -fs "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
done
curl -fs "http://$ADDR/healthz" >/dev/null || { cat "$TMP/serve.log"; exit 1; }

echo "== submit census k=4 job"
submit=$(curl -fs -X POST "http://$ADDR/jobs" \
    -d '{"kind":"census","size":4,"dataset":"karate"}')
id=$(python3 -c 'import json,sys; print(json.loads(sys.argv[1])["id"])' "$submit")
echo "   job id $id: $submit"

echo "== poll to completion (progress must be monotonic)"
state=$(python3 - "$ADDR" "$id" <<'EOF'
import json, sys, time, urllib.request
addr, jid = sys.argv[1], sys.argv[2]
last_done = last_seen = -1
deadline = time.time() + 60
while time.time() < deadline:
    with urllib.request.urlopen(f"http://{addr}/jobs/{jid}") as r:
        st = json.load(r)
    p = st["progress"]
    assert p["vertices_done"] >= last_done, (p, last_done)
    assert p["subgraphs_seen"] >= last_seen, (p, last_seen)
    last_done, last_seen = p["vertices_done"], p["subgraphs_seen"]
    if st["state"] in ("completed", "cancelled", "failed"):
        print(st["state"])
        sys.exit(0)
    time.sleep(0.05)
print("timeout")
EOF
)
echo "   terminal state: $state"
[ "$state" = completed ] || { cat "$TMP/serve.log"; exit 1; }

echo "== diff result against the golden karate k=4 histogram"
result=$(curl -fs "http://$ADDR/jobs/$id/result")
python3 - "$result" <<'EOF'
import json, sys
res = json.loads(sys.argv[1])
assert res["state"] == "completed" and not res["partial"], res
got = res["result"]["histogram"]
golden = {   # pinned in internal/census/census_test.go against the oracle
    "4:110010": 681,   # path4
    "4:110011": 36,    # cycle4
    "4:110100": 1098,  # star4
    "4:111100": 452,   # paw
    "4:111110": 85,    # diamond
    "4:111111": 11,    # clique4
}
assert got == golden, f"histogram mismatch:\n got    {got}\n golden {golden}"
assert res["result"]["subgraphs"] == sum(golden.values()), res
print("   histogram matches golden (%d subgraphs)" % sum(golden.values()))
EOF

echo "== NDJSON result format"
ndjson=$(curl -fs "http://$ADDR/jobs/$id/result?format=ndjson")
python3 - "$ndjson" <<'EOF'
import json, sys
lines = [json.loads(l) for l in sys.argv[1].splitlines() if l.strip()]
classes = {l["class"]: l["count"] for l in lines if "class" in l}
assert classes.get("clique4") == 11 and classes.get("path4") == 681, classes
assert "summary" in lines[-1] and lines[-1]["summary"]["state"] == "completed", lines[-1]
print("   %d class lines + summary" % (len(lines) - 1))
EOF

echo "== job metrics families on /metrics"
metrics=$(curl -fs "http://$ADDR/metrics")
for family in \
    'rads_jobs_submitted_total 1' \
    'rads_jobs_total{outcome="completed"} 1' \
    'rads_jobs_total{outcome="cancelled"}' \
    'rads_jobs_total{outcome="failed"}' \
    'rads_jobs_running' \
    'rads_jobs_queued' \
    'rads_job_progress' \
    'rads_job_checkpoints_total' \
    'rads_census_subgraphs_total 2363' \
    'rads_census_subgraphs_per_second'; do
    if ! grep -qF "$family" <<<"$metrics"; then
        echo "FAIL: /metrics missing $family"
        echo "$metrics"; exit 1
    fi
done

echo "PASS: census smoke"
