#!/usr/bin/env bash
# End-to-end smoke test of the multi-process deployment:
#
#   1. radserve -snapshot-only partitions the DBLP analog and writes
#      the snapshot.
#   2. Two radsworker OS processes each host two machines from their
#      snapshot shards.
#   3. A cluster-mode radserve fronts them; a RADS query must execute
#      on the workers and match an in-process engine bit for bit.
#   4. radserve is restarted; its first query must be answered from the
#      snapshot (no re-partitioning) and still match.
#
#   5. Chaos: one worker is wedged (SIGSTOP) and later killed outright;
#      in-flight queries must fail with a clean typed 503 (never a
#      hang), worker_up and breaker metrics must track the outage, and
#      after the worker returns the cluster must serve again with no
#      coordinator restart.
#
# CI runs this; it also works locally: ./scripts/cluster_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

PORT_BASE=${SMOKE_PORT_BASE:-19400}
ADDR="127.0.0.1:$PORT_BASE"
W1="127.0.0.1:$((PORT_BASE + 1))"
W2="127.0.0.1:$((PORT_BASE + 2))"
W1DBG="127.0.0.1:$((PORT_BASE + 3))"

echo "== build (ldflags-injected build info)"
BUILD_VERSION=smoke
BUILD_COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
go build -ldflags "-X rads/internal/buildinfo.Version=$BUILD_VERSION -X rads/internal/buildinfo.Commit=$BUILD_COMMIT" \
    -o "$TMP/bin/" ./cmd/radserve ./cmd/radsworker

echo "== write snapshot (partition once)"
"$TMP/bin/radserve" -dataset DBLP -scale 0.4 -machines 4 \
    -snapshot "$TMP/snap" -snapshot-only

cat > "$TMP/spec.json" <<EOF
{"machines": ["$W1", "$W1", "$W2", "$W2"]}
EOF

echo "== start two radsworker processes"
"$TMP/bin/radsworker" -spec "$TMP/spec.json" -snapshot "$TMP/snap" \
    -machines 0,1 -debug-addr "$W1DBG" >"$TMP/worker1.log" 2>&1 &
PIDS+=($!)
start_worker2() {
    "$TMP/bin/radsworker" -spec "$TMP/spec.json" -snapshot "$TMP/snap" \
        -machines 2,3 >>"$TMP/worker2.log" 2>&1 &
    W2PID=$!
    PIDS+=($W2PID)
}
start_worker2

# Fault-tolerance knobs are tuned tight so the chaos phase detects an
# outage in seconds: 1s per-RPC deadline, 5s budget for a dispatched
# query, 300ms heartbeats, breaker opens after 2 consecutive failures.
start_serve() {
    "$TMP/bin/radserve" -addr "$ADDR" -snapshot "$TMP/snap" \
        -cluster "$TMP/spec.json" \
        -call-timeout 1s -query-timeout 5s -rpc-retries 2 \
        -heartbeat 300ms -breaker-threshold 2 >"$TMP/serve.log" 2>&1 &
    PIDS+=($!)
    for _ in $(seq 1 100); do
        if curl -fs "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "radserve did not come up"; cat "$TMP/serve.log"; exit 1
}

total_of() { # total_of PATTERN ENGINE
    # No -f: on a non-200 the body is the error we want to see, not an
    # opaque empty-input traceback from the JSON parse.
    body=$(curl -s "http://$ADDR/query?pattern=$1&engine=$2&nocache=1")
    if ! printf '%s' "$body" \
        | python3 -c 'import json,sys; d=json.load(sys.stdin); print(d["total"])'; then
        echo "FAIL: query pattern=$1 engine=$2 did not return a total: $body" >&2
        return 1
    fi
}

echo "== start cluster-mode radserve"
start_serve
SERVE_PID=${PIDS[-1]}

echo "== query: cluster RADS vs in-process baseline (conformance patterns)"
for q in triangle 'square:4:0-1,1-2,2-3,3-0' q1; do
    remote=$(total_of "$q" RADS)
    local_=$(total_of "$q" TwinTwig)
    echo "   $q: cluster RADS=$remote, in-process TwinTwig=$local_"
    if [ "$remote" != "$local_" ] || [ "$remote" -le 0 ]; then
        echo "FAIL: counts disagree (or are empty) for $q"
        tail -20 "$TMP"/*.log; exit 1
    fi
done

echo "== verify both worker processes executed queries"
for log in "$TMP/worker1.log" "$TMP/worker2.log"; do
    if ! grep -q "hosting machines" "$log"; then
        echo "FAIL: $log shows no hosted machines"; cat "$log"; exit 1
    fi
done
# The workers' comm metrics flow back per query; assert the coordinator
# accounted remote traffic (i.e. the work really ran out-of-process).
remote_bytes=$(curl -fs "http://$ADDR/stats" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["comm_by_kind"].get("remote", 0))')
if [ "$remote_bytes" -le 0 ]; then
    echo "FAIL: /stats shows no remote communication ($remote_bytes bytes)"
    exit 1
fi
echo "   remote comm: $remote_bytes bytes"

echo "== observability: /metrics on the coordinator"
metrics=$(curl -fs "http://$ADDR/metrics")
for family in \
    'rads_query_seconds_count{engine="RADS"}' \
    'rads_admission_wait_seconds_count' \
    'rads_queries_total{outcome="ok"}' \
    'rads_cache_hits_total' \
    'rads_cache_misses_total' \
    'rads_transport_bytes_total{kind=' \
    'rads_transport_latency_seconds_count{kind=' \
    'rads_steals_total' \
    'rads_jobs_running' \
    'rads_jobs_queued' \
    'rads_jobs_submitted_total' \
    'rads_jobs_total{outcome="completed"}' \
    'rads_jobs_total{outcome="cancelled"}' \
    'rads_jobs_total{outcome="failed"}' \
    'rads_job_progress' \
    'rads_census_subgraphs_total' \
    'rads_census_subgraphs_per_second' \
    '# TYPE rads_events_total counter' \
    "rads_build_info{build=\"$BUILD_VERSION@$BUILD_COMMIT\"} 1"; do
    if ! grep -qF "$family" <<<"$metrics"; then
        echo "FAIL: coordinator /metrics missing $family"
        echo "$metrics"; exit 1
    fi
done
# The same injected build info appears in /healthz.
if ! curl -fs "http://$ADDR/healthz" | grep -qF "\"build\":\"$BUILD_VERSION@$BUILD_COMMIT\""; then
    echo "FAIL: coordinator /healthz missing build info"
    curl -fs "http://$ADDR/healthz"; exit 1
fi

echo "== observability: /metrics and /healthz on worker 1"
wmetrics=$(curl -fs "http://$W1DBG/metrics")
for family in \
    'rads_query_seconds_count{engine="RADS"}' \
    'rads_admission_wait_seconds_count' \
    'rads_handle_seconds_count{kind="runQuery"}' \
    'rads_transport_bytes_total{kind=' \
    'rads_cache_hits_total' \
    'rads_steals_total' \
    'rads_events_total{type="query_start"}' \
    'rads_events_total{type="query_done"}' \
    "rads_build_info{build=\"$BUILD_VERSION@$BUILD_COMMIT\"} 1"; do
    if ! grep -qF "$family" <<<"$wmetrics"; then
        echo "FAIL: worker /metrics missing $family"
        echo "$wmetrics"; exit 1
    fi
done
# The worker's journal replays its query executions.
wevents=$(curl -fs "http://$W1DBG/debug/events?type=query_done")
python3 - "$wevents" <<'EOF'
import json, sys
d = json.loads(sys.argv[1])
evs = d["events"]
assert evs, "worker journal has no query_done events"
assert all(e["type"] == "query_done" for e in evs), "?type= filter leaked other events"
assert any("ok in" in e["detail"] for e in evs), evs
EOF
health=$(curl -fs "http://$W1DBG/healthz")
python3 - "$health" "$BUILD_VERSION@$BUILD_COMMIT" <<'EOF'
import json, sys
h = json.loads(sys.argv[1])
assert h["ready"] is True, h
assert h["machines"] == [0, 1], h
assert len(h["snapshot_fingerprint"]) == 16, h
assert h["build"] == sys.argv[2], h
EOF
echo "   worker healthz: $health"

echo "== observability: /debug/trace lists the served queries"
traces=$(curl -fs "http://$ADDR/debug/trace")
python3 - "$traces" <<'EOF'
import json, sys
t = json.loads(sys.argv[1])
recent = t.get("recent") or []
assert recent, "no recent profiles in /debug/trace"
p = recent[0]
assert p.get("wall_seconds", 0) > 0 or p.get("cache_hit"), p
EOF
echo "   recent profiles present"

echo "== observability: stitched cluster trace covers >= 2 machines"
qid=$(curl -s "http://$ADDR/query?pattern=q1&engine=RADS&nocache=1" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["query_id"])')
curl -fs "http://$ADDR/debug/trace?id=$qid" | python3 -c '
import json, sys
p = json.load(sys.stdin)
spans = p.get("spans") or []
stitched = [s for s in spans if s["name"].startswith("execute/") and s["machine"] >= 0]
machines = sorted({s["machine"] for s in stitched})
assert len(machines) >= 2, "stitched spans cover machines %s, want >= 2 (%d spans)" % (machines, len(spans))
starts = [s["start_ns"] for s in spans]
assert starts == sorted(starts), "spans not in timeline order"
print("   query %d: %d spans from machines %s" % (p["id"], len(spans), machines))'

echo "== observability: /metrics/cluster merges worker registries under machine labels"
fleet=$(curl -fs "http://$ADDR/metrics/cluster")
for line in \
    'rads_queries_total{machine="0",outcome="ok"}' \
    'rads_queries_total{machine="2",outcome="ok"}' \
    'rads_handle_seconds_count{machine="1",kind="runQuery"}' \
    'rads_handle_seconds_count{machine="3",kind="runQuery"}' \
    "rads_build_info{machine=\"0\",build=\"$BUILD_VERSION@$BUILD_COMMIT\"} 1" \
    'rads_cache_hits_total '; do
    if ! grep -qF "$line" <<<"$fleet"; then
        echo "FAIL: /metrics/cluster missing $line"
        echo "$fleet" | head -60; exit 1
    fi
done
# One HELP block per family even when coordinator and workers share it.
if [ "$(grep -cF '# HELP rads_cache_hits_total' <<<"$fleet")" != 1 ]; then
    echo "FAIL: shared family rendered with duplicate HELP blocks"; exit 1
fi

echo "== observability: /debug/cluster fleet summary"
curl -fs "http://$ADDR/debug/cluster" | python3 -c '
import json, sys
s = json.load(sys.stdin)
assert s["healthy"] is True, s
assert s["machines"] == 4, s
assert len(s["workers"]) == 4, s
fps = {w["fingerprint"] for w in s["workers"]}
assert len(fps) == 1 and "" not in fps, s
for w in s["workers"]:
    assert w["up"] and w["breaker"] == "closed", w
print("   4 workers up, fingerprint", fps.pop())'

echo "== restart radserve: first query must be warm (no re-partitioning)"
kill "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true
start_serve
if ! grep -q "no re-partitioning" "$TMP/serve.log"; then
    echo "FAIL: restarted radserve did not load the snapshot"
    cat "$TMP/serve.log"; exit 1
fi
warm=$(total_of triangle RADS)
cold=$(total_of triangle SEED)
echo "   after restart: RADS=$warm, SEED=$cold"
if [ "$warm" != "$cold" ]; then
    echo "FAIL: post-restart counts disagree"; exit 1
fi

# ---------------------------------------------------------------- chaos

# query_code PATTERN -> HTTP status (body lands in $TMP/chaos_body.json).
# -m 30 is the watchdog: a hang here is exactly the bug this phase
# exists to catch.
query_code() {
    curl -s -o "$TMP/chaos_body.json" -w '%{http_code}' -m 30 \
        "http://$ADDR/query?pattern=$1&engine=RADS&nocache=1"
}

# wait_health STATUS waits for /healthz to report it (ok | degraded).
wait_health() {
    for _ in $(seq 1 120); do
        got=$(curl -fs "http://$ADDR/healthz" \
            | python3 -c 'import json,sys; print(json.load(sys.stdin)["status"])' \
            2>/dev/null || true)
        if [ "$got" = "$1" ]; then return 0; fi
        sleep 0.5
    done
    echo "FAIL: /healthz never reported $1"
    curl -fs "http://$ADDR/healthz"; tail -20 "$TMP/serve.log"; exit 1
}

echo "== chaos: wedge worker 2 (SIGSTOP) — in-flight query must 503, not hang"
kill -STOP "$W2PID"
began=$(date +%s)
code=$(query_code triangle)
took=$(( $(date +%s) - began ))
if [ "$code" != 503 ]; then
    echo "FAIL: query against a wedged worker returned $code, want 503"
    cat "$TMP/chaos_body.json"; exit 1
fi
if ! grep -q "worker" "$TMP/chaos_body.json"; then
    echo "FAIL: 503 body does not name the down worker"
    cat "$TMP/chaos_body.json"; exit 1
fi
echo "   wedged query: 503 in ${took}s ($(cat "$TMP/chaos_body.json"))"

echo "== chaos: breaker opens, health and metrics track the outage"
wait_health degraded
cmetrics=$(curl -fs "http://$ADDR/metrics")
if ! grep -qE 'rads_cluster_worker_up\{machine="(2|3)"\} 0' <<<"$cmetrics"; then
    echo "FAIL: no worker_up gauge dropped to 0"
    grep rads_cluster <<<"$cmetrics" || true; exit 1
fi
if ! grep -q 'rads_cluster_healthy 0' <<<"$cmetrics"; then
    echo "FAIL: rads_cluster_healthy still 1 during outage"; exit 1
fi
timeouts=$(grep -c '^rads_cluster_rpc_timeouts_total{' <<<"$cmetrics" || true)
retries=$(grep -c '^rads_cluster_rpc_retries_total{' <<<"$cmetrics" || true)
if [ "$timeouts" -eq 0 ] && [ "$retries" -eq 0 ]; then
    echo "FAIL: neither timeout nor retry counters moved during the outage"
    grep rads_cluster <<<"$cmetrics" || true; exit 1
fi
if ! grep -qE 'rads_cluster_breaker_state\{machine="(2|3)"\} [12]' <<<"$cmetrics"; then
    echo "FAIL: no breaker left the closed state"; exit 1
fi
# /stats carries the same per-machine view for operators.
curl -fs "http://$ADDR/stats" | python3 -c '
import json, sys
s = json.load(sys.stdin)
c = s["cluster"]
assert c["healthy"] is False, c
down = [w["machine"] for w in c["workers"] if not w["up"]]
assert down, c
print("   /stats cluster view: workers", down, "down")'

echo "== chaos: gated query fails fast while the breaker is open"
began=$(date +%s)
code=$(query_code triangle)
took=$(( $(date +%s) - began ))
if [ "$code" != 503 ]; then
    echo "FAIL: gated query returned $code, want 503"; exit 1
fi
if [ "$took" -gt 5 ]; then
    echo "FAIL: gated query took ${took}s — the breaker is not short-circuiting"
    exit 1
fi
echo "   gated query: 503 in ${took}s"

echo "== chaos: worker resumes (SIGCONT) — heartbeats must close the breaker"
kill -CONT "$W2PID"
wait_health ok
recovered=$(total_of triangle RADS)
if [ "$recovered" != "$warm" ]; then
    echo "FAIL: post-recovery count $recovered != $warm"; exit 1
fi
echo "   recovered: triangle=$recovered"

echo "== chaos: /debug/events replays the breaker transitions in order"
curl -fs "http://$ADDR/debug/events" | python3 -c '
import json, sys
d = json.load(sys.stdin)
evs = d["events"]
opens = [e for e in evs if e["type"] == "breaker_open" and e["machine"] in (2, 3)]
closes = [e for e in evs if e["type"] == "breaker_close" and e["machine"] in (2, 3)]
assert opens, "no breaker_open event for the wedged worker: %s" % evs
assert closes, "no breaker_close event after recovery: %s" % evs
assert opens[0]["seq"] < closes[-1]["seq"], (opens, closes)
assert all("worker %d" % e["machine"] in e["detail"] for e in opens + closes), (opens, closes)
c = d["counts"]
assert c.get("breaker_open", 0) >= 1 and c.get("breaker_close", 0) >= 1, c
print("   journal: %d breaker_open, %d breaker_close for the stopped worker" % (len(opens), len(closes)))'

echo "== chaos: kill worker 2 outright, restart it — no coordinator restart"
kill -9 "$W2PID"; wait "$W2PID" 2>/dev/null || true
wait_health degraded
code=$(query_code triangle)
if [ "$code" != 503 ]; then
    echo "FAIL: query against a dead worker returned $code, want 503"; exit 1
fi
start_worker2
wait_health ok
revived=$(total_of triangle RADS)
if [ "$revived" != "$warm" ]; then
    echo "FAIL: post-restart count $revived != $warm"; exit 1
fi
echo "   worker restarted: triangle=$revived, same radserve process"

echo "PASS: cluster smoke"
