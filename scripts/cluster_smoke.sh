#!/usr/bin/env bash
# End-to-end smoke test of the multi-process deployment:
#
#   1. radserve -snapshot-only partitions the DBLP analog and writes
#      the snapshot.
#   2. Two radsworker OS processes each host two machines from their
#      snapshot shards.
#   3. A cluster-mode radserve fronts them; a RADS query must execute
#      on the workers and match an in-process engine bit for bit.
#   4. radserve is restarted; its first query must be answered from the
#      snapshot (no re-partitioning) and still match.
#
# CI runs this; it also works locally: ./scripts/cluster_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

PORT_BASE=${SMOKE_PORT_BASE:-19400}
ADDR="127.0.0.1:$PORT_BASE"
W1="127.0.0.1:$((PORT_BASE + 1))"
W2="127.0.0.1:$((PORT_BASE + 2))"
W1DBG="127.0.0.1:$((PORT_BASE + 3))"

echo "== build"
go build -o "$TMP/bin/" ./cmd/radserve ./cmd/radsworker

echo "== write snapshot (partition once)"
"$TMP/bin/radserve" -dataset DBLP -scale 0.4 -machines 4 \
    -snapshot "$TMP/snap" -snapshot-only

cat > "$TMP/spec.json" <<EOF
{"machines": ["$W1", "$W1", "$W2", "$W2"]}
EOF

echo "== start two radsworker processes"
"$TMP/bin/radsworker" -spec "$TMP/spec.json" -snapshot "$TMP/snap" \
    -machines 0,1 -debug-addr "$W1DBG" >"$TMP/worker1.log" 2>&1 &
PIDS+=($!)
"$TMP/bin/radsworker" -spec "$TMP/spec.json" -snapshot "$TMP/snap" \
    -machines 2,3 >"$TMP/worker2.log" 2>&1 &
PIDS+=($!)

start_serve() {
    "$TMP/bin/radserve" -addr "$ADDR" -snapshot "$TMP/snap" \
        -cluster "$TMP/spec.json" >"$TMP/serve.log" 2>&1 &
    PIDS+=($!)
    for _ in $(seq 1 100); do
        if curl -fs "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "radserve did not come up"; cat "$TMP/serve.log"; exit 1
}

total_of() { # total_of PATTERN ENGINE
    curl -fs "http://$ADDR/query?pattern=$1&engine=$2&nocache=1" \
        | python3 -c 'import json,sys; d=json.load(sys.stdin); print(d["total"])'
}

echo "== start cluster-mode radserve"
start_serve
SERVE_PID=${PIDS[-1]}

echo "== query: cluster RADS vs in-process baseline (conformance patterns)"
for q in triangle 'square:4:0-1,1-2,2-3,3-0' q1; do
    remote=$(total_of "$q" RADS)
    local_=$(total_of "$q" TwinTwig)
    echo "   $q: cluster RADS=$remote, in-process TwinTwig=$local_"
    if [ "$remote" != "$local_" ] || [ "$remote" -le 0 ]; then
        echo "FAIL: counts disagree (or are empty) for $q"
        tail -20 "$TMP"/*.log; exit 1
    fi
done

echo "== verify both worker processes executed queries"
for log in "$TMP/worker1.log" "$TMP/worker2.log"; do
    if ! grep -q "hosting machines" "$log"; then
        echo "FAIL: $log shows no hosted machines"; cat "$log"; exit 1
    fi
done
# The workers' comm metrics flow back per query; assert the coordinator
# accounted remote traffic (i.e. the work really ran out-of-process).
remote_bytes=$(curl -fs "http://$ADDR/stats" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["comm_by_kind"].get("remote", 0))')
if [ "$remote_bytes" -le 0 ]; then
    echo "FAIL: /stats shows no remote communication ($remote_bytes bytes)"
    exit 1
fi
echo "   remote comm: $remote_bytes bytes"

echo "== observability: /metrics on the coordinator"
metrics=$(curl -fs "http://$ADDR/metrics")
for family in \
    'rads_query_seconds_count{engine="RADS"}' \
    'rads_admission_wait_seconds_count' \
    'rads_queries_total{outcome="ok"}' \
    'rads_cache_hits_total' \
    'rads_cache_misses_total' \
    'rads_transport_bytes_total{kind=' \
    'rads_transport_latency_seconds_count{kind=' \
    'rads_steals_total' \
    'rads_jobs_running' \
    'rads_jobs_queued' \
    'rads_jobs_submitted_total' \
    'rads_jobs_total{outcome="completed"}' \
    'rads_jobs_total{outcome="cancelled"}' \
    'rads_jobs_total{outcome="failed"}' \
    'rads_job_progress' \
    'rads_census_subgraphs_total' \
    'rads_census_subgraphs_per_second'; do
    if ! grep -qF "$family" <<<"$metrics"; then
        echo "FAIL: coordinator /metrics missing $family"
        echo "$metrics"; exit 1
    fi
done

echo "== observability: /metrics and /healthz on worker 1"
wmetrics=$(curl -fs "http://$W1DBG/metrics")
for family in \
    'rads_query_seconds_count{engine="RADS"}' \
    'rads_admission_wait_seconds_count' \
    'rads_handle_seconds_count{kind="runQuery"}' \
    'rads_transport_bytes_total{kind=' \
    'rads_cache_hits_total' \
    'rads_steals_total'; do
    if ! grep -qF "$family" <<<"$wmetrics"; then
        echo "FAIL: worker /metrics missing $family"
        echo "$wmetrics"; exit 1
    fi
done
health=$(curl -fs "http://$W1DBG/healthz")
python3 - "$health" <<'EOF'
import json, sys
h = json.loads(sys.argv[1])
assert h["ready"] is True, h
assert h["machines"] == [0, 1], h
assert len(h["snapshot_fingerprint"]) == 16, h
EOF
echo "   worker healthz: $health"

echo "== observability: /debug/trace lists the served queries"
traces=$(curl -fs "http://$ADDR/debug/trace")
python3 - "$traces" <<'EOF'
import json, sys
t = json.loads(sys.argv[1])
recent = t.get("recent") or []
assert recent, "no recent profiles in /debug/trace"
p = recent[0]
assert p.get("wall_seconds", 0) > 0 or p.get("cache_hit"), p
EOF
echo "   recent profiles present"

echo "== restart radserve: first query must be warm (no re-partitioning)"
kill "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true
start_serve
if ! grep -q "no re-partitioning" "$TMP/serve.log"; then
    echo "FAIL: restarted radserve did not load the snapshot"
    cat "$TMP/serve.log"; exit 1
fi
warm=$(total_of triangle RADS)
cold=$(total_of triangle SEED)
echo "   after restart: RADS=$warm, SEED=$cold"
if [ "$warm" != "$cold" ]; then
    echo "FAIL: post-restart counts disagree"; exit 1
fi

echo "PASS: cluster smoke"
