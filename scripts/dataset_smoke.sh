#!/usr/bin/env bash
# Dataset smoke: ingest the committed real edge-list fixture with
# radsprep, verify the .radsgraph structurally and by checksum, then
# require every registered engine to reproduce the oracle's counts on
# it via `radsbench -exp count` — triangle and a 4-vertex query, on
# both the first-seen and the degree-ordered relabeling.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/radsprep" ./cmd/radsprep
go build -o "$tmp/radsbench" ./cmd/radsbench

fixture=internal/dataset/testdata/karate.txt

"$tmp/radsprep" ingest "$fixture" -o "$tmp/reg/karate.radsgraph" -name karate -registry "$tmp/reg"
"$tmp/radsprep" ingest "$fixture" -o "$tmp/reg/karate-hubs.radsgraph" -name karate-hubs -degree-order -registry "$tmp/reg"
"$tmp/radsprep" verify -registry "$tmp/reg" karate
"$tmp/radsprep" verify -registry "$tmp/reg" karate-hubs
"$tmp/radsprep" stats -registry "$tmp/reg" karate -triangles

for ds in karate karate-hubs; do
  for pat in triangle q4; do
    "$tmp/radsbench" -exp count -registry "$tmp/reg" -dataset "$ds" -pattern "$pat" -machines 4
  done
done

echo "dataset smoke OK"
